//! The simulated machine: 16 workstation nodes, their memory hierarchies,
//! protocol controllers, the mesh interconnect and the DSM protocol glue.
//!
//! [`Simulation`] owns the deterministic back end. Workload threads (the
//! front end) drive it through [`ncp2_sim::ProcHarness`]: the back end
//! always resumes the runnable processor with the smallest local clock, or
//! handles the earliest pending event, whichever comes first — so a run is
//! a deterministic function of (parameters, protocol, workload).

use std::collections::VecDeque;

use ncp2_mem::NodeMemory;
use ncp2_net::Network;
use ncp2_sim::ops::LockId;
use ncp2_sim::{
    Breakdown, Category, Cycles, EventQueue, Priority, ProcHarness, ProcOp, ProcReply, ProcStatus,
    SysParams,
};

use crate::bitvec::DirtyVec;
use crate::controller::Controller;
use crate::diff::DiffList;
use crate::interval::IntervalStore;
use crate::msg::Msg;
use crate::page::{page_of, PageBuf, PageId, PageState};
use crate::protocol::Protocol;
use crate::span::{CtrlCmd, EdgeKind, Engine, SpanId, SpanKind};
use crate::stats::{NodeStats, RunResult};
use crate::table::{DiffTable, FlatMap, IdSet};
use crate::vtime::{IntervalId, VectorTime};

/// Back-end events.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A protocol message reaches `dst`'s network interface.
    Msg { dst: usize, msg: Msg },
    /// A blocked processor's pending operation completes.
    Wake { pid: usize },
    /// One physical transport-frame copy reaches `dst`'s interface
    /// (`fault` feature: hardened transport engaged).
    #[cfg(feature = "fault")]
    Frame {
        src: usize,
        dst: usize,
        /// Link-local sequence number.
        seq: u64,
        /// Transmission attempt this copy belongs to.
        attempt: u32,
        msg: Msg,
        /// Fault verdict rolled at send time: the copy arrives damaged
        /// (dropped or detectably corrupted) and is discarded on arrival.
        lost: bool,
        /// Injection time at the sender (for the delivery dependency edge).
        sent_at: Cycles,
        /// Sender span anchoring the delivery edge.
        anchor: SpanId,
    },
    /// A cumulative acknowledgement for link `src → dst` arrives back at
    /// `src`: every frame with sequence number below `cum` is delivered.
    #[cfg(feature = "fault")]
    Ack { src: usize, dst: usize, cum: u64 },
    /// A retransmit timer for frame `seq` (at `attempt`) on `src → dst`.
    #[cfg(feature = "fault")]
    RetxCheck {
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    },
}

/// In-flight fault state: replies still outstanding plus collected payloads.
#[derive(Debug, Default)]
pub(crate) struct FaultWait {
    pub page: PageId,
    pub outstanding: usize,
    pub ready_at: Cycles,
    pub diffs: DiffList,
    pub full_page: Option<(PageBuf, VectorTime)>,
}

/// Why a processor is blocked.
#[derive(Debug, Default)]
pub(crate) enum Wait {
    #[default]
    None,
    /// TreadMarks access fault collecting diffs.
    Fault(FaultWait),
    /// Fault that found a prefetch already in flight for the page.
    PrefetchJoin {
        /// The page whose in-flight prefetch the fault joined.
        #[allow(dead_code)]
        page: PageId,
    },
    /// Waiting for a lock grant.
    Lock { lock: LockId },
    /// Waiting for a barrier release.
    Barrier,
    /// AURC page fetch from the home node.
    AurcFault { page: PageId },
}

impl Wait {
    fn category(&self) -> Category {
        match self {
            Wait::None => Category::Other,
            Wait::Fault(_) | Wait::PrefetchJoin { .. } | Wait::AurcFault { .. } => Category::Data,
            Wait::Lock { .. } | Wait::Barrier => Category::Synch,
        }
    }
}

/// One node's copy of a TreadMarks page.
#[derive(Debug)]
pub(crate) struct TmPage {
    pub data: PageBuf,
    pub state: PageState,
    /// Twin snapshot and the interval it belongs to (software modes only).
    pub twin: Option<(IntervalId, PageBuf)>,
    /// Snooped dirty-word bits (hardware-diff modes only).
    pub dirty: DirtyVec,
    /// Set when the page is dirtied in the open interval.
    pub in_cur_dirty: bool,
    /// Referenced since last (re)validation.
    pub referenced: bool,
    /// Referenced at the time it was last invalidated (prefetch heuristic).
    pub was_referenced: bool,
    /// Referenced during the most recent validity window (the non-sticky
    /// variant used by `PrefetchStrategy::RecentlyReferenced`).
    pub recently_referenced: bool,
    /// Completed prefetch not yet used by any access.
    pub prefetched_unused: bool,
    /// Unapplied write notices `(owner, interval)`.
    pub pending: Vec<(usize, IntervalId)>,
    /// Intervals of *this* node that dirtied the page (for full-page apply).
    pub own_intervals: Vec<IntervalId>,
}

impl TmPage {
    fn new(page_bytes: u64, page_words: u64) -> Self {
        TmPage {
            data: PageBuf::new(page_bytes),
            state: PageState::ReadOnly,
            twin: None,
            dirty: DirtyVec::new(page_words as usize),
            in_cur_dirty: false,
            referenced: false,
            was_referenced: false,
            recently_referenced: false,
            prefetched_unused: false,
            pending: Vec::new(),
            own_intervals: Vec::new(),
        }
    }
}

/// In-flight prefetch for one page.
#[derive(Debug, Default)]
pub(crate) struct PrefetchState {
    pub outstanding: usize,
    pub ready_at: Cycles,
    pub diffs: DiffList,
    pub full_page: Option<(PageBuf, VectorTime)>,
    /// Notices the prefetch will satisfy.
    pub requested: Vec<(usize, IntervalId)>,
    /// A fault is blocked waiting for this prefetch.
    pub joined: bool,
}

/// AURC per-node view of one page: nine protocol flags packed into one
/// word, so the per-node page table is a flat array of 2-byte records
/// instead of a hash map of bool structs.
#[derive(Debug, Default)]
pub(crate) struct AurcLocal {
    flags: u16,
}

/// Generates `name()` / `set_name()` (and optionally `take_name()`)
/// accessors for one packed flag bit.
macro_rules! aurc_flags {
    ($($(#[$doc:meta])* $bit:literal => $get:ident, $set:ident $(, $take:ident)?;)+) => {
        impl AurcLocal {
            $(
                $(#[$doc])*
                pub fn $get(&self) -> bool {
                    self.flags & (1 << $bit) != 0
                }

                /// Sets the flag read by the same-named accessor.
                pub fn $set(&mut self, v: bool) {
                    if v {
                        self.flags |= 1 << $bit;
                    } else {
                        self.flags &= !(1 << $bit);
                    }
                }

                $(
                    /// Returns the flag and clears it.
                    pub fn $take(&mut self) -> bool {
                        let v = self.$get();
                        self.$set(false);
                        v
                    }
                )?
            )+
        }
    };
}

aurc_flags! {
    /// The local copy (or home/pairwise mapping) is up to date.
    0 => valid, set_valid;
    /// Referenced since last (re)validation.
    1 => referenced, set_referenced;
    /// Referenced at the time it was last invalidated (prefetch heuristic).
    2 => was_referenced, set_was_referenced;
    /// Referenced during the most recent validity window (the non-sticky
    /// variant used by `PrefetchStrategy::RecentlyReferenced`).
    3 => recently_referenced, set_recently_referenced;
    /// Completed prefetch not yet used by any access.
    4 => prefetched_unused, set_prefetched_unused, take_prefetched_unused;
    /// A prefetch for this page is in flight.
    5 => prefetching, set_prefetching;
    /// The page was invalidated again while a prefetch was in flight; the
    /// reply must not re-validate it.
    6 => prefetch_stale, set_prefetch_stale, take_prefetch_stale;
    /// Dirtied in the open interval.
    7 => in_cur_dirty, set_in_cur_dirty;
    /// A fault is blocked waiting for an in-flight prefetch of this page.
    8 => joined, set_joined, take_joined;
}

/// AURC global sharing mode of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AurcMode {
    /// Touched by one processor only.
    Single(usize),
    /// Bi-directional pairwise mapping; `replaced` is set once the third
    /// sharer has displaced the original first sharer (§3.3) — the next
    /// outsider then forces home mode.
    Pairwise(usize, usize, bool),
    /// Written through to a home node by everyone.
    Home(usize),
}

/// AURC network-interface write cache: combines consecutive updates per
/// cache line before they hit the wire (§3.3).
#[derive(Debug, Default)]
pub(crate) struct WriteCache {
    /// FIFO of `(line address, destination)` entries.
    pub entries: VecDeque<(u64, usize)>,
    pub capacity: usize,
}

impl WriteCache {
    /// Inserts a line; returns an evicted entry if the cache was full.
    /// Returns `None` with no effect when the line is already present
    /// (combining hit, recorded by the caller).
    pub fn insert(&mut self, line: u64, dst: usize) -> InsertOutcome {
        if self.entries.iter().any(|&(l, d)| l == line && d == dst) {
            return InsertOutcome::Combined;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back((line, dst));
        InsertOutcome::Inserted { evicted }
    }

    /// Drains every entry (release-time flush).
    pub fn flush(&mut self) -> Vec<(u64, usize)> {
        self.entries.drain(..).collect()
    }
}

/// Result of a write-cache insert.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum InsertOutcome {
    Combined,
    Inserted { evicted: Option<(u64, usize)> },
}

/// Everything belonging to one workstation node.
pub(crate) struct Node {
    pub time: Cycles,
    pub status: ProcStatus,
    pub wait: Wait,
    pub wait_start: Cycles,
    /// Cycles spent servicing others while this processor was blocked
    /// (reclassified from wait time to IPC at wake).
    pub ipc_during_wait: Cycles,
    pub pending_op: Option<ProcOp>,
    pub mem: NodeMemory,
    pub ctrl: Controller,
    pub stats: NodeStats,
    // --- TreadMarks state ---
    pub vt: VectorTime,
    pub pages: FlatMap<TmPage>,
    pub store: IntervalStore,
    /// Diffs this node created for its own writes, keyed by (page, interval).
    pub diffs: DiffTable,
    pub cur_dirty: Vec<PageId>,
    pub last_barrier_vt: VectorTime,
    pub held_locks: IdSet,
    /// Locks whose grant token this node possesses (held or last released
    /// here and not yet passed on).
    pub owned_locks: IdSet,
    /// Forwarded acquire requests queued while this node holds the lock.
    pub lock_queue: FlatMap<VecDeque<(usize, VectorTime)>>,
    pub prefetches: FlatMap<PrefetchState>,
    // --- AURC state ---
    pub aurc_pages: FlatMap<AurcLocal>,
    pub wcache: WriteCache,
    /// At a home node: per-page arrival horizon of incoming updates.
    pub home_horizon: FlatMap<Cycles>,
    /// Per-destination arrival horizon of updates this node has emitted.
    pub out_horizon: Vec<Cycles>,
}

impl Node {
    fn new(pid: usize, params: &SysParams) -> Self {
        let _ = pid;
        Node {
            time: 0,
            status: ProcStatus::Runnable,
            wait: Wait::None,
            wait_start: 0,
            ipc_during_wait: 0,
            pending_op: None,
            mem: NodeMemory::new(params),
            ctrl: Controller::new(),
            stats: NodeStats::default(),
            vt: VectorTime::new(params.nprocs),
            pages: FlatMap::new(),
            store: IntervalStore::new(),
            diffs: DiffTable::new(),
            cur_dirty: Vec::new(),
            last_barrier_vt: VectorTime::new(params.nprocs),
            held_locks: IdSet::new(),
            owned_locks: IdSet::new(),
            lock_queue: FlatMap::new(),
            prefetches: FlatMap::new(),
            aurc_pages: FlatMap::new(),
            wcache: WriteCache {
                entries: VecDeque::new(),
                capacity: params.write_cache_entries,
            },
            home_horizon: FlatMap::new(),
            out_horizon: vec![0; params.nprocs],
        }
    }
}

/// Pending barrier episode at its manager.
#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    pub arrived: usize,
    pub merged_vt: Option<VectorTime>,
    pub anns: IntervalStore,
    /// AURC: `horizons[src][dst]` arrival horizon reported by each arrival.
    pub horizons: Vec<Vec<Cycles>>,
}

/// The complete simulated machine for one run.
pub struct Simulation {
    pub(crate) params: SysParams,
    pub(crate) protocol: Protocol,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) net: Network,
    pub(crate) nodes: Vec<Node>,
    /// Lock manager state: last owner per lock (chain head).
    pub(crate) lock_last: FlatMap<usize>,
    pub(crate) barriers: FlatMap<BarrierState>,
    /// AURC master data plane and global sharing modes.
    pub(crate) master: FlatMap<PageBuf>,
    pub(crate) aurc_modes: FlatMap<AurcMode>,
    pub(crate) done: usize,
    pub(crate) seq: bool,
    pub(crate) trace: Vec<crate::trace::TraceEvent>,
    /// Open-loop service counters, lazily created by the first
    /// [`ProcOp::Svc`] lifecycle marker (stays `None` for the closed-loop
    /// kernels, so their results are bit-for-bit unchanged).
    pub(crate) svc: Option<crate::stats::SvcStats>,
    /// Shadow checker receiving protocol events (`verify` feature only).
    #[cfg(feature = "verify")]
    pub(crate) observer: Option<Box<dyn crate::observe::Observer>>,
    /// Mutation hook for oracle self-tests: when armed, exactly one foreign
    /// write notice is silently discarded during announcement processing.
    #[cfg(feature = "verify")]
    pub(crate) drop_notice_armed: bool,
    /// Span/flight/engine recorder (`obs` feature only, armed via
    /// [`Simulation::enable_obs`]).
    #[cfg(feature = "obs")]
    pub(crate) obs: Option<crate::span::ObsRecorder>,
    /// Windowed time-series recorder (`obs` feature only, armed via
    /// [`Simulation::enable_timeseries`]).
    #[cfg(feature = "obs")]
    pub(crate) ts: Option<crate::timeseries::TsRecorder>,
    /// Hardened-transport state (`fault` feature only, engaged via
    /// [`Simulation::attach_fault_plan`] with an active plan; `None` means
    /// every message takes the legacy exactly-once path).
    #[cfg(feature = "fault")]
    pub(crate) fault: Option<Box<crate::transport::FaultCtx>>,
    /// Mutation hook for oracle self-tests: when armed, the next intact
    /// inter-node data frame is consumed without delivery and without a
    /// terminal frame event — the conservation oracle must flag it.
    #[cfg(all(feature = "fault", feature = "verify"))]
    pub(crate) silent_frame_loss_armed: bool,
}

impl Simulation {
    /// Builds a machine with the given parameters and protocol.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`SysParams::validate`].
    pub fn new(params: SysParams, protocol: Protocol) -> Self {
        // invariant: construction-time precondition — a bad machine
        // description must fail loudly before any cycle is simulated
        params.validate().expect("invalid system parameters");
        let n = params.nprocs;
        Simulation {
            queue: EventQueue::new(),
            net: Network::new(n),
            nodes: (0..n).map(|p| Node::new(p, &params)).collect(),
            lock_last: FlatMap::new(),
            barriers: FlatMap::new(),
            master: FlatMap::new(),
            aurc_modes: FlatMap::new(),
            done: 0,
            seq: n == 1,
            trace: Vec::new(),
            svc: None,
            #[cfg(feature = "verify")]
            observer: None,
            #[cfg(feature = "verify")]
            drop_notice_armed: false,
            #[cfg(feature = "obs")]
            obs: None,
            #[cfg(feature = "obs")]
            ts: None,
            #[cfg(feature = "fault")]
            fault: None,
            #[cfg(all(feature = "fault", feature = "verify"))]
            silent_frame_loss_armed: false,
            params,
            protocol,
        }
    }

    /// Attaches a shadow observer that receives every protocol event; its
    /// findings land in [`RunResult::violations`]. Only effective when
    /// `ncp2-core` is built with the `verify` feature — without it the
    /// observer is dropped and the simulation carries no hooks at all.
    #[allow(unused_variables)]
    pub fn attach_observer(&mut self, observer: Box<dyn crate::observe::Observer>) {
        #[cfg(feature = "verify")]
        {
            self.observer = Some(observer);
        }
    }

    /// Arms the oracle-test mutation: the next foreign write notice processed
    /// anywhere in the machine is dropped without invalidating its page —
    /// the coverage oracle must flag it.
    #[cfg(feature = "verify")]
    pub fn inject_drop_write_notice(&mut self) {
        self.drop_notice_armed = true;
    }

    /// Arms span/flight/engine recording over simulated time; the resulting
    /// timeline lands in [`RunResult::obs`] and its conservation invariant
    /// (per-node, per-category span time equals the node's `Breakdown`) is
    /// checked at [`RunResult::violations`]. Only effective when `ncp2-core`
    /// is built with the `obs` feature — without it this is a no-op and every
    /// recording site compiles away, exactly like the `verify` hooks.
    pub fn enable_obs(&mut self) {
        #[cfg(feature = "obs")]
        {
            self.obs = Some(crate::span::ObsRecorder::new(self.params.nprocs));
        }
    }

    /// Arms windowed time-series recording over simulated time; the finished
    /// series lands in [`RunResult::ts`]. The window width comes from
    /// [`SysParams::ts_window`] (`0` auto-picks, doubling as the run grows).
    /// Only effective when `ncp2-core` is built with the `obs` feature —
    /// without it this is a no-op and every recording site compiles away,
    /// exactly like the `verify` hooks.
    pub fn enable_timeseries(&mut self) {
        #[cfg(feature = "obs")]
        {
            self.ts = Some(crate::timeseries::TsRecorder::new(
                self.params.nprocs,
                self.params.ts_window,
            ));
        }
    }

    // ----- obs recording (compiled away without the `obs` feature) --------

    /// Records one conserved processor span.
    #[cfg(feature = "obs")]
    pub(crate) fn obs_span(
        &mut self,
        node: usize,
        kind: SpanKind,
        cat: Category,
        start: Cycles,
        dur: Cycles,
    ) {
        if let Some(r) = self.obs.as_mut() {
            r.span(node, kind, cat, start, dur);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_span(
        &mut self,
        _node: usize,
        _kind: SpanKind,
        _cat: Category,
        _start: Cycles,
        _dur: Cycles,
    ) {
    }

    /// Records one controller-engine occupancy interval.
    #[cfg(feature = "obs")]
    pub(crate) fn obs_engine(
        &mut self,
        node: usize,
        engine: Engine,
        cmd: CtrlCmd,
        start: Cycles,
        end: Cycles,
    ) {
        if let Some(r) = self.obs.as_mut() {
            r.engine(node, engine, cmd, start, end);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_engine(
        &mut self,
        _node: usize,
        _engine: Engine,
        _cmd: CtrlCmd,
        _start: Cycles,
        _end: Cycles,
    ) {
    }

    /// Records one message flight.
    #[cfg(feature = "obs")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_flight(
        &mut self,
        src: usize,
        dst: usize,
        kind: crate::observe::MsgKind,
        bytes: u64,
        prefetch: bool,
        inject: Cycles,
        start: Cycles,
        arrival: Cycles,
    ) {
        if let Some(r) = self.obs.as_mut() {
            r.flight(src, dst, kind, bytes, prefetch, inject, start, arrival);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_flight(
        &mut self,
        _src: usize,
        _dst: usize,
        _kind: crate::observe::MsgKind,
        _bytes: u64,
        _prefetch: bool,
        _inject: Cycles,
        _start: Cycles,
        _arrival: Cycles,
    ) {
    }

    /// Notes a completed prefetch (for prefetch-to-use distances).
    #[cfg(feature = "obs")]
    pub(crate) fn obs_prefetch_done(&mut self, node: usize, page: PageId, t: Cycles) {
        if let Some(r) = self.obs.as_mut() {
            r.prefetch_done(node, page, t);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_prefetch_done(&mut self, _node: usize, _page: PageId, _t: Cycles) {}

    /// Notes an access consuming a completed prefetch.
    #[cfg(feature = "obs")]
    pub(crate) fn obs_prefetch_used(&mut self, node: usize, page: PageId, t: Cycles) {
        if let Some(r) = self.obs.as_mut() {
            r.prefetch_used(node, page, t);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_prefetch_used(&mut self, _node: usize, _page: PageId, _t: Cycles) {}

    /// Advances a node's barrier epoch.
    #[cfg(feature = "obs")]
    pub(crate) fn obs_epoch(&mut self, node: usize) {
        if let Some(r) = self.obs.as_mut() {
            r.epoch_advance(node);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_epoch(&mut self, _node: usize) {}

    /// Records one span charged off the node's own timeline (see
    /// [`crate::span::Span::detached`]).
    #[cfg(feature = "obs")]
    pub(crate) fn obs_span_detached(
        &mut self,
        node: usize,
        kind: SpanKind,
        cat: Category,
        start: Cycles,
        dur: Cycles,
    ) {
        if let Some(r) = self.obs.as_mut() {
            r.span_detached(node, kind, cat, start, dur);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_span_detached(
        &mut self,
        _node: usize,
        _kind: SpanKind,
        _cat: Category,
        _start: Cycles,
        _dur: Cycles,
    ) {
    }

    /// The most recent span recorded on `node` — the anchor every dependency
    /// edge must reference (enforced by the `xtask lint` edge-site rule and
    /// by [`crate::span::ObsRecorder::edge`] dropping unanchored edges).
    #[cfg(feature = "obs")]
    pub(crate) fn obs_last_span(&self, node: usize) -> SpanId {
        self.obs
            .as_ref()
            .map(|r| r.last_span(node))
            .unwrap_or(SpanId::NONE)
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_last_span(&self, _node: usize) -> SpanId {
        SpanId::NONE
    }

    /// Records one typed dependency edge.
    #[cfg(feature = "obs")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_edge(
        &mut self,
        kind: EdgeKind,
        src_node: usize,
        src_time: Cycles,
        dst_node: usize,
        dst_time: Cycles,
        work: Cycles,
        src_span: SpanId,
    ) {
        if let Some(r) = self.obs.as_mut() {
            r.edge(kind, src_node, src_time, dst_node, dst_time, work, src_span);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_edge(
        &mut self,
        _kind: EdgeKind,
        _src_node: usize,
        _src_time: Cycles,
        _dst_node: usize,
        _dst_time: Cycles,
        _work: Cycles,
        _src_span: SpanId,
    ) {
    }

    /// Notes an issued prefetch (anchors the eventual issue→first-use edge).
    #[cfg(feature = "obs")]
    pub(crate) fn obs_prefetch_issued(&mut self, node: usize, page: PageId, t: Cycles) {
        if let Some(r) = self.obs.as_mut() {
            r.prefetch_issued(node, page, t);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn obs_prefetch_issued(&mut self, _node: usize, _page: PageId, _t: Cycles) {}

    // ----- time-series recording (compiled away without `obs`) ------------

    /// Charges `n` events of counter `c` into the window holding cycle `t`.
    #[cfg(feature = "obs")]
    pub(crate) fn ts_count(&mut self, c: crate::timeseries::TsCounter, t: Cycles, n: u64) {
        if let Some(r) = self.ts.as_mut() {
            r.count(c, t, n);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn ts_count(&mut self, _c: crate::timeseries::TsCounter, _t: Cycles, _n: u64) {}

    /// Samples gauge `g` at value `v`; the window keeps the peak.
    #[cfg(feature = "obs")]
    pub(crate) fn ts_gauge(&mut self, g: crate::timeseries::TsGauge, t: Cycles, v: u64) {
        if let Some(r) = self.ts.as_mut() {
            r.gauge(g, t, v);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn ts_gauge(&mut self, _g: crate::timeseries::TsGauge, _t: Cycles, _v: u64) {}

    /// Notes a retransmission on link `src -> dst` (global counter plus the
    /// per-link series). Only the hardened transport retransmits, so the
    /// hook has no callers without the `fault` feature.
    #[cfg(feature = "obs")]
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    pub(crate) fn ts_retransmit(&mut self, src: usize, dst: usize, t: Cycles) {
        if let Some(r) = self.ts.as_mut() {
            r.retransmit(src, dst, t);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    pub(crate) fn ts_retransmit(&mut self, _src: usize, _dst: usize, _t: Cycles) {}

    /// Notes a transport frame entering (`up`) or leaving flight on link
    /// `src -> dst`. Flight is a hardened-transport notion, so the hook has
    /// no callers without the `fault` feature.
    #[cfg(feature = "obs")]
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    pub(crate) fn ts_flight(&mut self, src: usize, dst: usize, t: Cycles, up: bool) {
        if let Some(r) = self.ts.as_mut() {
            r.flight(src, dst, t, up);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    pub(crate) fn ts_flight(&mut self, _src: usize, _dst: usize, _t: Cycles, _up: bool) {}

    /// Charges controller busy cycles `[start, end)` to `node`'s occupancy
    /// series, clipped across window boundaries.
    #[cfg(feature = "obs")]
    pub(crate) fn ts_ctrl_span(&mut self, node: usize, start: Cycles, end: Cycles) {
        if let Some(r) = self.ts.as_mut() {
            r.span(node, start, end);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn ts_ctrl_span(&mut self, _node: usize, _start: Cycles, _end: Cycles) {}

    /// Accumulates page hot-spot attribution.
    #[cfg(feature = "obs")]
    pub(crate) fn ts_page(&mut self, page: PageId, transfers: u64, diff_bytes: u64, invals: u64) {
        if let Some(r) = self.ts.as_mut() {
            r.page(page, transfers, diff_bytes, invals);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn ts_page(
        &mut self,
        _page: PageId,
        _transfers: u64,
        _diff_bytes: u64,
        _invals: u64,
    ) {
    }

    /// Accumulates lock hot-spot attribution.
    #[cfg(feature = "obs")]
    pub(crate) fn ts_lock(&mut self, lock: u64, wait: Cycles, acquires: u64, migrations: u64) {
        if let Some(r) = self.ts.as_mut() {
            r.lock(lock, wait, acquires, migrations);
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub(crate) fn ts_lock(&mut self, _lock: u64, _wait: Cycles, _acquires: u64, _migrations: u64) {}

    /// Degradation-policy stub: without the `fault` feature (or without an
    /// attached plan — see `transport.rs`) no prefetch is ever shed.
    #[cfg(not(feature = "fault"))]
    #[inline(always)]
    pub(crate) fn shed_prefetch(&mut self, _pid: usize, _page: PageId, _now: Cycles) -> bool {
        false
    }

    /// Forwards one event to the attached observer, if any.
    #[cfg(feature = "verify")]
    pub(crate) fn emit(&mut self, ev: crate::observe::ProtocolEvent) {
        if let Some(obs) = self.observer.as_mut() {
            obs.on_event(&ev);
        }
    }

    /// Runs `body` on every simulated processor to completion and returns
    /// the run's statistics.
    ///
    /// The body receives `(pid, port)` and must finish with
    /// [`ProcOp::Finish`] (the `ncp2-apps` framework does this for you).
    ///
    /// # Panics
    ///
    /// Panics on deadlock (blocked processors with no pending events) and on
    /// workload panics.
    pub fn run<F>(mut self, body: F) -> RunResult
    where
        F: Fn(usize, ncp2_sim::ProcPort) + Send + Sync + 'static,
    {
        let harness = ProcHarness::spawn(self.params.nprocs, body);
        let n = self.params.nprocs;
        while self.done < n {
            let next_proc = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, nd)| nd.status == ProcStatus::Runnable)
                .min_by_key(|(pid, nd)| (nd.time, *pid))
                .map(|(pid, nd)| (pid, nd.time));
            // `peek` memoizes the minimum event's position inside the
            // calendar queue, so the `pop` in the arms below reuses the scan
            // instead of repeating it.
            let next_ev = self.queue.peek().map(|ev| ev.time);
            match (next_proc, next_ev) {
                (Some((pid, pt)), Some(et)) if et > pt => self.step_proc(pid, &harness),
                (_, Some(_)) => {
                    // invariant: peek returned Some just above
                    let ev = self.queue.pop().expect("peeked event");
                    let depth = self.queue.len() as u64;
                    self.ts_gauge(crate::timeseries::TsGauge::QueueDepth, ev.time, depth);
                    self.handle_event(ev.time, ev.payload, &harness);
                }
                (Some((pid, _)), None) => self.step_proc(pid, &harness),
                (None, None) => {
                    let stuck: Vec<usize> = self
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, nd)| nd.status == ProcStatus::Blocked)
                        .map(|(p, _)| p)
                        .collect();
                    // invariant: no runnable processor and no event means the
                    // protocol lost a wakeup — unrecoverable by definition
                    panic!("simulation deadlock: processors {stuck:?} blocked with no events");
                }
            }
        }
        harness.join();
        self.finish()
    }

    fn finish(mut self) -> RunResult {
        // Frames still in flight at run end (their messages already
        // delivered by another attempt, or gap-blocked prefetch stragglers)
        // get their terminal event so the conservation law balances.
        #[cfg(feature = "fault")]
        self.drain_inflight_frames();
        let total = self.nodes.iter().map(|nd| nd.time).max().unwrap_or(0);
        for nd in &mut self.nodes {
            nd.stats.controller_busy = nd.ctrl.busy();
        }
        #[cfg(feature = "verify")]
        let mut violations = self
            .observer
            .take()
            .map(|mut obs| obs.finish())
            .unwrap_or_default();
        #[cfg(not(feature = "verify"))]
        let mut violations: Vec<crate::observe::Violation> = Vec::new();
        let nodes: Vec<NodeStats> = self.nodes.iter().map(|nd| nd.stats).collect();
        #[cfg(feature = "obs")]
        let obs = self.obs.take().map(|r| r.into_log());
        #[cfg(not(feature = "obs"))]
        let obs: Option<crate::span::ObsLog> = None;
        #[cfg(feature = "obs")]
        let ts = self.ts.take().map(|r| r.into_log(total));
        #[cfg(not(feature = "obs"))]
        let ts: Option<crate::timeseries::TsLog> = None;
        if let Some(log) = &obs {
            for (node, detail) in log.conservation_errors(&nodes) {
                violations.push(crate::observe::Violation::SpanConservation { node, detail });
            }
        }
        #[cfg(feature = "fault")]
        let fault = self.fault.as_ref().map(|c| c.stats).unwrap_or_default();
        #[cfg(not(feature = "fault"))]
        let fault = crate::stats::FaultStats::default();
        RunResult {
            violations,
            protocol: self.protocol.label().to_string(),
            nprocs: self.params.nprocs,
            total_cycles: total,
            nodes,
            net: self.net.stats(),
            checksum: 0,
            trace: std::mem::take(&mut self.trace),
            obs,
            fault,
            ts,
            svc: self.svc.take(),
        }
    }

    // ----- processor stepping -------------------------------------------

    fn step_proc(&mut self, pid: usize, harness: &ProcHarness) {
        let op = harness.next_op(pid);
        match op {
            ProcOp::Compute(c) => {
                self.advance(pid, c, Category::Busy, SpanKind::Compute);
                harness.reply(pid, ProcReply::Ack);
            }
            ProcOp::Read { .. } | ProcOp::Write { .. } => {
                self.nodes[pid].pending_op = Some(op);
                if let Some(reply) = self.access(pid, op) {
                    self.nodes[pid].pending_op = None;
                    harness.reply(pid, reply);
                }
                // else: blocked; replied at wake.
            }
            ProcOp::Lock(l) => {
                self.nodes[pid].pending_op = Some(op);
                if self.seq {
                    self.advance(pid, 10, Category::Synch, SpanKind::SyncOp);
                    self.nodes[pid].pending_op = None;
                    harness.reply(pid, ProcReply::Ack);
                } else {
                    self.op_lock(pid, l);
                }
            }
            ProcOp::Unlock(l) => {
                if self.seq {
                    self.advance(pid, 10, Category::Synch, SpanKind::SyncOp);
                } else {
                    self.op_unlock(pid, l);
                }
                harness.reply(pid, ProcReply::Ack);
            }
            ProcOp::Barrier(b) => {
                self.nodes[pid].pending_op = Some(op);
                if self.seq {
                    self.advance(pid, 10, Category::Synch, SpanKind::SyncOp);
                    self.nodes[pid].pending_op = None;
                    harness.reply(pid, ProcReply::Ack);
                } else {
                    self.op_barrier(pid, b);
                }
            }
            ProcOp::Finish => {
                self.nodes[pid].status = ProcStatus::Done;
                self.done += 1;
                harness.reply(pid, ProcReply::Ack);
            }
            ProcOp::Svc(svc_op) => {
                let reply = self.svc_op(pid, svc_op);
                harness.reply(pid, reply);
            }
        }
    }

    /// Handles a zero-time service-plane marker: clock reads answer from
    /// the node clock, dequeue/reply markers accumulate the open-loop
    /// service statistics and emit trace/time-series samples. Never blocks
    /// and never advances simulated time.
    fn svc_op(&mut self, pid: usize, op: ncp2_sim::SvcOp) -> ProcReply {
        let now = self.nodes[pid].time;
        match op {
            ncp2_sim::SvcOp::Now => ProcReply::Value(now),
            ncp2_sim::SvcOp::Dequeue { depth } => {
                let svc = self.svc.get_or_insert_with(Default::default);
                svc.dequeues += 1;
                svc.queue_peak = svc.queue_peak.max(depth);
                self.record(now, pid, crate::trace::TraceKind::SvcDequeue { depth });
                self.ts_gauge(crate::timeseries::TsGauge::SvcQueueDepth, now, depth);
                ProcReply::Ack
            }
            ncp2_sim::SvcOp::Reply { class, response } => {
                let svc = self.svc.get_or_insert_with(Default::default);
                match class {
                    ncp2_sim::SvcClass::Get => svc.gets += 1,
                    ncp2_sim::SvcClass::Put => svc.puts += 1,
                    ncp2_sim::SvcClass::Session => svc.sessions += 1,
                }
                svc.response.observe(response);
                self.record(
                    now,
                    pid,
                    crate::trace::TraceKind::SvcReply { class, response },
                );
                ProcReply::Ack
            }
        }
    }

    /// Performs a read/write op. Returns `Some(reply)` when it completed
    /// synchronously, `None` when the processor blocked.
    fn access(&mut self, pid: usize, op: ProcOp) -> Option<ProcReply> {
        if self.seq {
            return Some(self.seq_access(pid, op));
        }
        match self.protocol {
            Protocol::TreadMarks(_) => self.tm_access(pid, op),
            Protocol::Aurc { .. } => self.aurc_access(pid, op),
        }
    }

    fn seq_access(&mut self, pid: usize, op: ProcOp) -> ProcReply {
        let (addr, write) = match op {
            ProcOp::Read { addr, .. } => (addr, false),
            ProcOp::Write { addr, .. } => (addr, true),
            _ => unreachable!("seq_access on non-memory op"),
        };
        self.charge_mem(pid, addr, write);
        let page = page_of(addr, self.params.page_bytes);
        let pb = self.params.page_bytes;
        let buf = self.master.get_or_insert_with(page, || PageBuf::new(pb));
        let off = (addr % self.params.page_bytes) as usize;
        match op {
            ProcOp::Read { bytes, .. } => ProcReply::Value(buf.read(off, bytes)),
            ProcOp::Write { bytes, value, .. } => {
                buf.write(off, bytes, value);
                ProcReply::Ack
            }
            _ => unreachable!(),
        }
    }

    // ----- shared helpers -----------------------------------------------

    /// Advances `pid`'s clock by `c` cycles of `cat`, spent on `kind`.
    pub(crate) fn advance(&mut self, pid: usize, c: Cycles, cat: Category, kind: SpanKind) {
        let nd = &mut self.nodes[pid];
        let start = nd.time;
        nd.time += c;
        nd.stats.breakdown.add(cat, c);
        self.obs_span(pid, kind, cat, start, c);
    }

    /// Runs the hardware timing of one data reference and charges the
    /// breakdown (1 busy cycle on a hit; TLB/stall cycles as Other).
    pub(crate) fn charge_mem(&mut self, pid: usize, addr: u64, write: bool) {
        let now = self.nodes[pid].time;
        let params = self.params.clone();
        let nd = &mut self.nodes[pid];
        let out = if write {
            nd.mem.write(now, addr, &params)
        } else {
            nd.mem.read(now, addr, &params)
        };
        let hit_cycles = if out.cache_hit || write { 1 } else { 0 };
        // overflow: a same-cycle hit makes the window shorter than the
        // busy charge; clamp the remainder to zero.
        let other = (out.done - now).saturating_sub(hit_cycles);
        nd.time = out.done;
        nd.stats.breakdown.add(Category::Busy, hit_cycles);
        nd.stats.breakdown.add(Category::Other, other);
        self.obs_span(pid, SpanKind::MemHit, Category::Busy, now, hit_cycles);
        self.obs_span(
            pid,
            SpanKind::MemStall,
            Category::Other,
            now + hit_cycles,
            other,
        );
    }

    /// Charges `dur` cycles of unexpected service work to processor `pid`
    /// starting at event time `now`; returns the service completion time.
    ///
    /// * Runnable processors are preempted (their clock is pushed back).
    /// * Blocked processors overlap the service with their wait; the cycles
    ///   are reclassified from wait time to `cat` at wake.
    /// * Finished processors absorb the work without extending the run.
    pub(crate) fn interrupt_proc(
        &mut self,
        pid: usize,
        now: Cycles,
        dur: Cycles,
        cat: Category,
        kind: SpanKind,
    ) -> Cycles {
        let nd = &mut self.nodes[pid];
        match nd.status {
            ProcStatus::Runnable => {
                let start = nd.time;
                nd.time += dur;
                nd.stats.breakdown.add(cat, dur);
                self.obs_span(pid, kind, cat, start, dur);
            }
            ProcStatus::Blocked => {
                // Overlapped with the wait; the span (reclassified to IPC)
                // is emitted at wake.
                nd.ipc_during_wait += dur;
            }
            ProcStatus::Done => {
                nd.stats.breakdown.add(cat, dur);
                // Charged at the requester's event time: the node's own
                // timeline already ended, so the span would puncture the
                // per-node tiling the dependency graph is built on.
                self.obs_span_detached(pid, kind, cat, now, dur);
            }
        }
        now + dur
    }

    /// Records a protocol trace event when tracing is enabled.
    pub(crate) fn record(&mut self, time: Cycles, node: usize, kind: crate::trace::TraceKind) {
        if self.params.trace {
            self.trace
                .push(crate::trace::TraceEvent { time, node, kind });
        }
    }

    /// Schedules delivery of `msg` leaving `src` at `t`.
    pub(crate) fn dispatch(&mut self, t: Cycles, src: usize, dst: usize, msg: Msg) {
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::MsgSent {
            src,
            dst,
            kind: msg.kind(),
            demand: !msg.is_prefetch(),
        });
        let bytes = msg.bytes(self.params.page_bytes, self.params.page_words());
        self.record(
            t,
            src,
            crate::trace::TraceKind::MsgSent {
                dst,
                bytes,
                prefetch: msg.is_prefetch(),
            },
        );
        // With an active fault plan the hardened transport carries every
        // inter-node message (sequence numbers, acks, retransmission);
        // loopback sends stay on the legacy path — no wire, no faults.
        #[cfg(feature = "fault")]
        if self.fault.is_some() && src != dst {
            self.transport_send(t, src, dst, msg);
            return;
        }
        let prio = if msg.is_prefetch() {
            Priority::Low
        } else {
            Priority::Normal
        };
        let params = self.params.clone();
        let tr = self.net.transfer_timed(t, src, dst, bytes, &params);
        self.ts_count(crate::timeseries::TsCounter::Messages, t, 1);
        self.ts_count(crate::timeseries::TsCounter::MessageBytes, t, bytes);
        self.obs_flight(
            src,
            dst,
            msg.kind(),
            bytes,
            msg.is_prefetch(),
            t,
            tr.start,
            tr.arrival,
        );
        self.obs_edge(
            EdgeKind::Msg(msg.kind()),
            src,
            t,
            dst,
            tr.arrival,
            0,
            self.obs_last_span(src),
        );
        self.queue.push(tr.arrival, prio, Ev::Msg { dst, msg });
    }

    /// Sends a message with the setup performed by the **protocol
    /// controller** (I-modes): occupies the controller, not the processor.
    pub(crate) fn ctrl_send(&mut self, t: Cycles, src: usize, dst: usize, msg: Msg) {
        let oh = self.params.messaging_overhead;
        let (s, end) = self.nodes[src].ctrl.run_io(t, oh);
        self.note_ctrl(src, Engine::CtrlIo, CtrlCmd::Send, s, end);
        self.dispatch(end, src, dst, msg);
    }

    /// Notes a controller command: one `ControllerCommand` trace event plus
    /// an engine-occupancy interval for the obs timeline.
    pub(crate) fn note_ctrl(
        &mut self,
        node: usize,
        engine: Engine,
        cmd: CtrlCmd,
        start: Cycles,
        end: Cycles,
    ) {
        self.record(
            start,
            node,
            crate::trace::TraceKind::ControllerCommand { cmd },
        );
        self.obs_engine(node, engine, cmd, start, end);
        self.ts_ctrl_span(node, start, end);
        self.obs_edge(
            EdgeKind::Ctrl(cmd),
            node,
            start,
            node,
            end,
            0,
            self.obs_last_span(node),
        );
    }

    /// Blocks `pid` with the given wait reason.
    pub(crate) fn block(&mut self, pid: usize, wait: Wait) {
        let nd = &mut self.nodes[pid];
        debug_assert_eq!(nd.status, ProcStatus::Runnable, "double block of {pid}");
        nd.status = ProcStatus::Blocked;
        nd.wait_start = nd.time;
        nd.ipc_during_wait = 0;
        nd.wait = wait;
    }

    /// Schedules `pid` to wake at `t`.
    pub(crate) fn schedule_wake(&mut self, pid: usize, t: Cycles) {
        self.queue.push(t, Priority::Urgent, Ev::Wake { pid });
    }

    // ----- event handling -------------------------------------------------

    fn handle_event(&mut self, t: Cycles, ev: Ev, harness: &ProcHarness) {
        match ev {
            Ev::Wake { pid } => self.handle_wake(pid, t, harness),
            Ev::Msg { dst, msg } => self.handle_msg(dst, t, msg),
            #[cfg(feature = "fault")]
            Ev::Frame {
                src,
                dst,
                seq,
                attempt,
                msg,
                lost,
                sent_at,
                anchor,
            } => self.on_frame(t, src, dst, seq, attempt, msg, lost, sent_at, anchor),
            #[cfg(feature = "fault")]
            Ev::Ack { src, dst, cum } => self.on_ack(t, src, dst, cum),
            #[cfg(feature = "fault")]
            Ev::RetxCheck {
                src,
                dst,
                seq,
                attempt,
            } => self.on_retx_check(t, src, dst, seq, attempt),
        }
    }

    fn handle_wake(&mut self, pid: usize, t: Cycles, harness: &ProcHarness) {
        let cat = self.nodes[pid].wait.category();
        let stall_kind = match self.nodes[pid].wait {
            Wait::None => SpanKind::SyncOp,
            Wait::Fault(_) | Wait::AurcFault { .. } => SpanKind::FaultStall,
            Wait::PrefetchJoin { .. } => SpanKind::PrefetchStall,
            Wait::Lock { .. } => SpanKind::LockStall,
            Wait::Barrier => SpanKind::BarrierStall,
        };
        let was_barrier = matches!(self.nodes[pid].wait, Wait::Barrier);
        let lock_wait = match self.nodes[pid].wait {
            Wait::Lock { lock } => Some(lock),
            _ => None,
        };
        let (wait_start, stall, reclass);
        {
            let nd = &mut self.nodes[pid];
            debug_assert_eq!(nd.status, ProcStatus::Blocked, "wake of non-blocked {pid}");
            // overflow: zero-length waits can wake in the arrival cycle;
            // clamp rather than underflow.
            let wait_dur = t.saturating_sub(nd.wait_start);
            reclass = nd.ipc_during_wait.min(wait_dur);
            stall = wait_dur - reclass;
            wait_start = nd.wait_start;
            nd.stats.breakdown.add(cat, stall);
            nd.stats.breakdown.add(Category::Ipc, reclass);
            nd.ipc_during_wait = 0;
            nd.time = nd.wait_start.max(t);
            nd.status = ProcStatus::Runnable;
            nd.wait = Wait::None;
        }
        self.obs_span(pid, stall_kind, cat, wait_start, stall);
        self.obs_span(
            pid,
            SpanKind::Service,
            Category::Ipc,
            wait_start + stall,
            reclass,
        );
        if was_barrier {
            // The barrier wait belongs to the epoch it closes; the next
            // epoch begins with the processor's release.
            self.obs_epoch(pid);
        }
        if let Some(lock) = lock_wait {
            // The full stall is attributed to the window where the grant
            // arrived — the moment the contention resolved.
            self.ts_lock(lock as u64, stall, 0, 0);
        }
        // invariant: a processor only blocks with its faulting op recorded
        let op = self.nodes[pid].pending_op.expect("wake without pending op");
        match op {
            ProcOp::Read { .. } | ProcOp::Write { .. } => {
                // The access retries; it may block again (e.g. new notices
                // arrived for the page while a prefetch was in flight).
                if let Some(reply) = self.access(pid, op) {
                    self.nodes[pid].pending_op = None;
                    harness.reply(pid, reply);
                }
            }
            ProcOp::Lock(_) | ProcOp::Barrier(_) => {
                self.nodes[pid].pending_op = None;
                harness.reply(pid, ProcReply::Ack);
            }
            other => unreachable!("unexpected pending op {other:?}"),
        }
    }

    pub(crate) fn handle_msg(&mut self, dst: usize, t: Cycles, msg: Msg) {
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::MsgDelivered {
            dst,
            kind: msg.kind(),
            demand: !msg.is_prefetch(),
        });
        match msg {
            Msg::LockReq { lock, acquirer, vt } => self.on_lock_req(dst, t, lock, acquirer, vt),
            Msg::LockForward { lock, acquirer, vt } => {
                self.on_lock_forward(dst, t, lock, acquirer, vt)
            }
            Msg::LockGrant {
                lock,
                anns,
                update_horizon,
            } => self.on_lock_grant(dst, t, lock, anns, update_horizon),
            Msg::BarrierArrive {
                barrier,
                from,
                vt,
                anns,
                horizons,
            } => self.on_barrier_arrive(dst, t, barrier, from, vt, anns, horizons),
            Msg::BarrierRelease {
                barrier,
                vt,
                anns,
                update_horizon,
            } => {
                let _ = barrier; // consumed by the verify hook below
                #[cfg(feature = "verify")]
                self.emit(crate::observe::ProtocolEvent::BarrierCompleted { pid: dst, barrier });
                self.on_barrier_release(dst, t, vt, anns, update_horizon)
            }
            Msg::DiffReq {
                page,
                intervals,
                requester,
                requester_vt,
                prefetch,
                want_page,
            } => self.on_diff_req(
                dst,
                t,
                page,
                intervals,
                requester,
                requester_vt,
                prefetch,
                want_page,
            ),
            Msg::DiffReply {
                page,
                diffs,
                full_page,
                prefetch,
            } => self.on_diff_reply(dst, t, page, diffs, full_page, prefetch),
            Msg::AurcUpdate { page, .. } => self.on_aurc_update(dst, t, page),
            Msg::AurcPageReq {
                page,
                requester,
                prefetch,
            } => self.on_aurc_page_req(dst, t, page, requester, prefetch),
            Msg::AurcPageReply { page, prefetch } => {
                self.on_aurc_page_reply(dst, t, page, prefetch)
            }
        }
    }

    /// Sends `msg` from `src`, charging the per-message software overhead to
    /// the right engine: the protocol controller under the I-modes, the
    /// computation processor otherwise. `servicing` selects preemptive
    /// charging ([`Self::interrupt_proc`]) over in-line charging (the
    /// processor is the acting party). Advances `*t` to the injection time.
    pub(crate) fn send_msg(
        &mut self,
        t: &mut Cycles,
        src: usize,
        dst: usize,
        msg: Msg,
        cat: Category,
        servicing: bool,
    ) {
        let offload = matches!(self.protocol, Protocol::TreadMarks(m) if m.offload());
        if offload {
            let issue = Controller::issue_cost(&self.params);
            if servicing {
                *t = self.interrupt_proc(src, *t, issue, cat, SpanKind::MsgSetup);
            } else {
                self.advance(src, issue, cat, SpanKind::MsgSetup);
                *t = self.nodes[src].time;
            }
            self.ctrl_send(*t, src, dst, msg);
        } else {
            let oh = self.params.messaging_overhead;
            if servicing {
                *t = self.interrupt_proc(src, *t, oh, cat, SpanKind::MsgSetup);
            } else {
                self.advance(src, oh, cat, SpanKind::MsgSetup);
                *t = self.nodes[src].time;
            }
            self.dispatch(*t, src, dst, msg);
        }
    }

    // ----- small accessors used by the protocol modules -------------------

    /// The overlap mode (TreadMarks protocols only).
    pub(crate) fn mode(&self) -> crate::protocol::OverlapMode {
        match self.protocol {
            Protocol::TreadMarks(m) => m,
            Protocol::Aurc { .. } => unreachable!("mode() called under AURC"),
        }
    }

    /// Lazily materializes node `pid`'s copy of `page`.
    pub(crate) fn tm_page(&mut self, pid: usize, page: PageId) -> &mut TmPage {
        let (pb, pw) = (self.params.page_bytes, self.params.page_words());
        self.nodes[pid]
            .pages
            .get_or_insert_with(page, || TmPage::new(pb, pw))
    }

    /// Lazily materializes the AURC master copy of `page`.
    pub(crate) fn master_page(&mut self, page: PageId) -> &mut PageBuf {
        let pb = self.params.page_bytes;
        self.master.get_or_insert_with(page, || PageBuf::new(pb))
    }

    /// Aggregated breakdown over every node (testing aid).
    pub fn aggregate(&self) -> Breakdown {
        self.nodes.iter().map(|n| n.stats.breakdown).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OverlapMode;

    fn sim(n: usize) -> Simulation {
        Simulation::new(
            SysParams::default().with_nprocs(n),
            Protocol::TreadMarks(OverlapMode::Base),
        )
    }

    #[test]
    fn write_cache_combines_and_evicts_fifo() {
        let mut wc = WriteCache {
            entries: VecDeque::new(),
            capacity: 2,
        };
        assert_eq!(wc.insert(1, 0), InsertOutcome::Inserted { evicted: None });
        assert_eq!(wc.insert(1, 0), InsertOutcome::Combined);
        assert_eq!(wc.insert(2, 0), InsertOutcome::Inserted { evicted: None });
        assert_eq!(
            wc.insert(3, 0),
            InsertOutcome::Inserted {
                evicted: Some((1, 0))
            }
        );
        let flushed = wc.flush();
        assert_eq!(flushed, vec![(2, 0), (3, 0)]);
        assert!(wc.entries.is_empty());
    }

    #[test]
    fn write_cache_keys_on_line_and_destination() {
        let mut wc = WriteCache {
            entries: VecDeque::new(),
            capacity: 4,
        };
        assert_eq!(wc.insert(7, 0), InsertOutcome::Inserted { evicted: None });
        // Same line to a different destination is a distinct entry.
        assert_eq!(wc.insert(7, 1), InsertOutcome::Inserted { evicted: None });
        assert_eq!(wc.insert(7, 0), InsertOutcome::Combined);
        assert_eq!(wc.entries.len(), 2);
    }

    #[test]
    fn wait_categories_match_paper_buckets() {
        assert_eq!(Wait::Fault(FaultWait::default()).category(), Category::Data);
        assert_eq!(Wait::PrefetchJoin { page: 0 }.category(), Category::Data);
        assert_eq!(Wait::AurcFault { page: 0 }.category(), Category::Data);
        assert_eq!(Wait::Lock { lock: 0 }.category(), Category::Synch);
        assert_eq!(Wait::Barrier.category(), Category::Synch);
    }

    #[test]
    fn interrupt_proc_preempts_runnable_processors() {
        let mut s = sim(2);
        s.nodes[1].time = 1000;
        let done = s.interrupt_proc(1, 500, 100, Category::Ipc, SpanKind::Service);
        assert_eq!(done, 600, "service completes at event time + duration");
        assert_eq!(s.nodes[1].time, 1100, "the processor is pushed back");
        assert_eq!(s.nodes[1].stats.breakdown.ipc, 100);
    }

    #[test]
    fn interrupt_proc_overlaps_blocked_processors() {
        let mut s = sim(2);
        s.nodes[1].status = ncp2_sim::ProcStatus::Blocked;
        s.nodes[1].wait_start = 400;
        let done = s.interrupt_proc(1, 500, 100, Category::Ipc, SpanKind::Service);
        assert_eq!(done, 600);
        assert_eq!(
            s.nodes[1].ipc_during_wait, 100,
            "charged against the wait at wake"
        );
        assert_eq!(
            s.nodes[1].stats.breakdown.ipc, 0,
            "not yet in the breakdown"
        );
    }

    #[test]
    fn advance_tags_categories() {
        let mut s = sim(1);
        s.advance(0, 10, Category::Busy, SpanKind::Compute);
        s.advance(0, 5, Category::Synch, SpanKind::SyncOp);
        assert_eq!(s.nodes[0].time, 15);
        assert_eq!(s.nodes[0].stats.breakdown.busy, 10);
        assert_eq!(s.nodes[0].stats.breakdown.synch, 5);
    }

    #[test]
    fn tm_page_is_lazily_zeroed_and_readable() {
        let mut s = sim(2);
        let tp = s.tm_page(1, 42);
        assert_eq!(tp.state, PageState::ReadOnly);
        assert_eq!(tp.data.read(0, 8), 0);
        assert!(!tp.referenced && tp.pending.is_empty());
        // Master pages too.
        assert_eq!(s.master_page(7).read(64, 4), 0);
    }

    #[test]
    fn dispatch_prioritizes_prefetch_messages_low() {
        let mut s = sim(2);
        let demand = Msg::AurcPageReq {
            page: 0,
            requester: 0,
            prefetch: false,
        };
        let pf = Msg::AurcPageReq {
            page: 1,
            requester: 0,
            prefetch: true,
        };
        assert!(!demand.is_prefetch());
        assert!(pf.is_prefetch());
        // At equal delivery time, the queue orders by priority: the demand
        // message (Normal) pops before the prefetch (Low) even though it
        // was pushed second — the paper's command-priority mechanism.
        let prio = |m: &Msg| {
            if m.is_prefetch() {
                Priority::Low
            } else {
                Priority::Normal
            }
        };
        s.queue.push(100, prio(&pf), Ev::Msg { dst: 1, msg: pf });
        s.queue.push(
            100,
            prio(&demand),
            Ev::Msg {
                dst: 1,
                msg: demand,
            },
        );
        let first = s.queue.pop().expect("event");
        match first.payload {
            Ev::Msg {
                msg: Msg::AurcPageReq { prefetch, .. },
                ..
            } => assert!(!prefetch),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid system parameters")]
    fn bad_params_are_rejected() {
        let p = SysParams {
            page_bytes: 3000,
            ..SysParams::default()
        };
        let _ = Simulation::new(p, Protocol::TreadMarks(OverlapMode::Base));
    }
}
