//! Hardened transport: per-link sequence numbers, cumulative acks, capped
//! exponential-backoff retransmission, duplicate suppression, receive-side
//! resequencing and congestion-driven prefetch shedding.
//!
//! Compiled only with the `fault` feature, and engaged only when an *active*
//! [`ncp2_fault::FaultPlan`] is attached via
//! [`Simulation::attach_fault_plan`] — otherwise every message takes the
//! legacy exactly-once path in [`Simulation::dispatch`] and runs are
//! byte-identical to a build without the feature.
//!
//! ## State machine (per directed link `src → dst`)
//!
//! Sender: each [`Msg`] gets the link's next sequence number and is kept in
//! an `unacked` map until a cumulative ack covers it. Every transmission
//! schedules a retransmit check at `retransmit_timeout << min(attempt,
//! MAX_BACKOFF_EXP)`; a check that finds its frame still unacked at the same
//! attempt bumps the attempt, charges the messaging overhead (controller
//! under the I-modes, processor interrupt otherwise) and re-sends.
//!
//! Receiver: frames below `next_expected` (or already buffered) are
//! duplicates — discarded for the ack-processing cost and re-acked so a lost
//! ack cannot retransmit forever. Frames above `next_expected` wait in a
//! resequencing buffer (latency spikes reorder the wire). In-order frames
//! deliver their message, drain any now-consecutive buffered frames, and
//! trigger one cumulative ack.
//!
//! Every physical frame copy emits a `FrameSent` event and exactly one
//! terminal event (`FrameAccepted` / `FrameDuplicate` / `FrameDropped`, the
//! last also covering end-of-run drains) — the retransmit-aware conservation
//! law `ncp2-verify` checks.

use std::collections::BTreeMap;

use ncp2_fault::FaultPlan;
use ncp2_sim::{Category, Cycles, Priority};

use crate::controller::Controller;
use crate::msg::{Msg, MSG_HEADER_BYTES};
use crate::page::PageId;
use crate::protocol::Protocol;
use crate::span::{CtrlCmd, EdgeKind, Engine, SpanId, SpanKind};
use crate::system::{Ev, Simulation};

/// Hard cap on transmission attempts per frame. At the fault planner's
/// maximum admissible loss rate (50% per attempt, enforced by
/// `FaultPlan::validate`) the chance of exhausting 64 attempts is 2^-64 per
/// frame — the transport treats exhaustion as an unreachable configuration
/// error rather than silently giving up on a message.
pub const MAX_RETX_ATTEMPTS: u32 = 64;

/// Exponential backoff saturates at `retransmit_timeout << MAX_BACKOFF_EXP`.
pub const MAX_BACKOFF_EXP: u32 = 6;

/// Degradation threshold: a node with at least this many unacked frames in
/// flight sheds new prefetch commands (demand traffic keeps its retry
/// budget; prefetches are re-issuable hints per the paper's low-priority
/// prefetch semantics).
pub const SHED_UNACKED_MAX: usize = 4;

/// Wire size of an acknowledgement frame (header only).
const ACK_BYTES: u64 = MSG_HEADER_BYTES;

/// One unacknowledged frame at the sender.
#[derive(Debug)]
struct TxEntry {
    msg: Msg,
    attempt: u32,
    anchor: SpanId,
}

/// Sender state for one directed link.
#[derive(Debug, Default)]
struct LinkTx {
    next_seq: u64,
    unacked: BTreeMap<u64, TxEntry>,
}

/// A reordered frame waiting for its gap to fill.
#[derive(Debug)]
struct PendingFrame {
    msg: Msg,
    attempt: u32,
    sent_at: Cycles,
    anchor: SpanId,
}

/// Receiver state for one directed link.
#[derive(Debug, Default)]
struct LinkRx {
    next_expected: u64,
    buffer: BTreeMap<u64, PendingFrame>,
}

/// The whole transport: plan, per-link endpoints and run-global counters.
#[derive(Debug)]
pub(crate) struct FaultCtx {
    pub(crate) plan: FaultPlan,
    tx: BTreeMap<(usize, usize), LinkTx>,
    rx: BTreeMap<(usize, usize), LinkRx>,
    pub(crate) stats: crate::stats::FaultStats,
}

impl FaultCtx {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultCtx {
            plan,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            stats: crate::stats::FaultStats::default(),
        }
    }
}

impl Simulation {
    /// Attaches a fault plan: the router applies its latency spikes and the
    /// hardened transport carries every inter-node message. Inactive plans
    /// ([`FaultPlan::is_active`] == false, e.g. [`FaultPlan::none`]) attach
    /// nothing at all, so such runs stay byte-identical to fault-free ones.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        // invariant: construction-time precondition — a plan outside the
        // transport's survivability envelope must fail before the run starts
        plan.validate().expect("invalid fault plan");
        if !plan.is_active() {
            return;
        }
        self.net.set_fault_plan(plan.clone());
        self.fault = Some(Box::new(FaultCtx::new(plan)));
    }

    /// Arms the oracle-test mutation: the next intact inter-node data frame
    /// is consumed on arrival without delivery and without a terminal frame
    /// event — the retransmit-aware conservation law must flag it. (The
    /// logical message still arrives eventually via retransmission, so the
    /// run completes.)
    #[cfg(feature = "verify")]
    pub fn inject_silent_frame_loss(&mut self) {
        self.silent_frame_loss_armed = true;
    }

    /// Hands `msg` to the transport: assigns the link's next sequence
    /// number, remembers it for retransmission and sends the first attempt.
    pub(crate) fn transport_send(&mut self, t: Cycles, src: usize, dst: usize, msg: Msg) {
        let anchor = self.obs_last_span(src);
        // invariant: dispatch() only routes here with the transport attached
        let ctx = self.fault.as_mut().expect("transport without fault ctx");
        let tx = ctx.tx.entry((src, dst)).or_default();
        let seq = tx.next_seq;
        tx.next_seq += 1;
        tx.unacked.insert(
            seq,
            TxEntry {
                msg: msg.clone(),
                attempt: 0,
                anchor,
            },
        );
        self.ts_flight(src, dst, t, true);
        self.send_frame(t, src, dst, seq, 0, msg, anchor);
    }

    /// Injects one transmission attempt of a frame: consults the plan for
    /// drop/corrupt/duplicate verdicts, books the network for each physical
    /// copy, and schedules the retransmit check.
    // The argument list is the frame header; bundling it into a struct would
    // just rename the fields.
    #[allow(clippy::too_many_arguments)]
    fn send_frame(
        &mut self,
        t: Cycles,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        msg: Msg,
        anchor: SpanId,
    ) {
        let params = self.params.clone();
        let bytes = msg.bytes(params.page_bytes, params.page_words());
        let prio = if msg.is_prefetch() {
            Priority::Low
        } else {
            Priority::Normal
        };
        let (lost, copies) = {
            // invariant: only reachable with the transport attached
            let ctx = self.fault.as_mut().expect("send_frame without fault ctx");
            let drop = ctx.plan.drop_frame(src, dst, seq, attempt);
            let corrupt = !drop && ctx.plan.corrupt_frame(src, dst, seq, attempt);
            if drop {
                ctx.stats.drops_injected += 1;
            }
            if corrupt {
                // Corruption is detected at the receiver (checksum) and the
                // frame discarded — the payload itself is never mutated, so
                // application results stay fault-free-identical.
                ctx.stats.corrupts_injected += 1;
            }
            let lost = drop || corrupt;
            let dup = ctx.plan.dup_frame(src, dst, seq, attempt);
            if dup {
                ctx.stats.dups_injected += 1;
            }
            (lost, if dup { 2 } else { 1 })
        };
        for copy in 0..copies {
            // The duplicate copy always arrives intact: its purpose is to
            // stress receive-side suppression, not to double the loss rate.
            let copy_lost = lost && copy == 0;
            if let Some(ctx) = self.fault.as_mut() {
                ctx.stats.frames_sent += 1;
            }
            self.ts_count(crate::timeseries::TsCounter::FramesSent, t, 1);
            #[cfg(feature = "verify")]
            self.emit(crate::observe::ProtocolEvent::FrameSent {
                src,
                dst,
                seq,
                attempt,
            });
            let tr = self.net.transfer_timed(t, src, dst, bytes, &params);
            self.ts_count(crate::timeseries::TsCounter::Messages, t, 1);
            self.ts_count(crate::timeseries::TsCounter::MessageBytes, t, bytes);
            self.obs_flight(
                src,
                dst,
                msg.kind(),
                bytes,
                msg.is_prefetch(),
                t,
                tr.start,
                tr.arrival,
            );
            self.queue.push(
                tr.arrival,
                prio,
                Ev::Frame {
                    src,
                    dst,
                    seq,
                    attempt,
                    msg: msg.clone(),
                    lost: copy_lost,
                    sent_at: t,
                    anchor,
                },
            );
        }
        let rto = params.retransmit_timeout << attempt.min(MAX_BACKOFF_EXP);
        self.queue.push(
            t + rto,
            Priority::Normal,
            Ev::RetxCheck {
                src,
                dst,
                seq,
                attempt,
            },
        );
    }

    /// A frame reached `dst`'s network interface at `t`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_frame(
        &mut self,
        t: Cycles,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        msg: Msg,
        lost: bool,
        sent_at: Cycles,
        anchor: SpanId,
    ) {
        let ack_oh = self.params.ack_overhead;
        let (stalled_until, down) = {
            // invariant: frame events only exist with the transport attached
            let ctx = self.fault.as_ref().expect("frame without fault ctx");
            (ctx.plan.ctrl_stalled(dst, t), ctx.plan.node_down(dst, t))
        };
        if let Some(end) = stalled_until {
            // Controller stall: the frame waits at the interface until the
            // stall window closes, then is processed normally.
            self.queue.push(
                end,
                Priority::Normal,
                Ev::Frame {
                    src,
                    dst,
                    seq,
                    attempt,
                    msg,
                    lost,
                    sent_at,
                    anchor,
                },
            );
            return;
        }
        if lost || down {
            if down && !lost {
                self.fault
                    .as_mut()
                    // invariant: the `lost || down` arm is only reachable
                    // with a fault ctx installed.
                    .expect("frame without fault ctx")
                    .stats
                    .drops_injected += 1;
            }
            #[cfg(feature = "verify")]
            self.emit(crate::observe::ProtocolEvent::FrameDropped {
                src,
                dst,
                seq,
                attempt,
            });
            return;
        }
        #[cfg(feature = "verify")]
        if self.silent_frame_loss_armed && !msg.is_prefetch() {
            // Mutation hook: consume the frame with no terminal event and no
            // delivery. The conservation oracle must notice the imbalance.
            self.silent_frame_loss_armed = false;
            return;
        }
        let verdict = {
            // invariant: checked ctx present at function entry
            let ctx = self.fault.as_mut().expect("frame without fault ctx");
            let rx = ctx.rx.entry((src, dst)).or_default();
            if seq < rx.next_expected || rx.buffer.contains_key(&seq) {
                ctx.stats.dup_frames_dropped += 1;
                FrameVerdict::Duplicate
            } else if seq > rx.next_expected {
                rx.buffer.insert(
                    seq,
                    PendingFrame {
                        msg,
                        attempt,
                        sent_at,
                        anchor,
                    },
                );
                FrameVerdict::Buffered
            } else {
                FrameVerdict::Deliver(msg)
            }
        };
        match verdict {
            FrameVerdict::Duplicate => {
                #[cfg(feature = "verify")]
                self.emit(crate::observe::ProtocolEvent::FrameDuplicate {
                    src,
                    dst,
                    seq,
                    attempt,
                });
                self.record(
                    t,
                    dst,
                    crate::trace::TraceKind::DuplicateDropped { src, seq },
                );
                let done =
                    self.interrupt_proc(dst, t, ack_oh, Category::Ipc, SpanKind::DuplicateDropped);
                // Re-ack so a lost ack cannot make the sender retry forever.
                self.send_ack(done, src, dst);
            }
            FrameVerdict::Buffered => {
                // Out of order: wait for the gap; the ack stays cumulative.
            }
            FrameVerdict::Deliver(msg) => {
                self.deliver_frame(t, src, dst, seq, attempt, msg, sent_at, anchor);
                // Drain frames the gap-fill made consecutive.
                loop {
                    let next = {
                        // invariant: deliver_frame keeps the ctx attached
                        let ctx = self.fault.as_mut().expect("frame without fault ctx");
                        let rx = ctx.rx.entry((src, dst)).or_default();
                        let seq = rx.next_expected;
                        rx.buffer.remove(&seq).map(|p| (seq, p))
                    };
                    let Some((nseq, p)) = next else { break };
                    self.deliver_frame(t, src, dst, nseq, p.attempt, p.msg, p.sent_at, p.anchor);
                }
                let done = self.interrupt_proc(dst, t, ack_oh, Category::Ipc, SpanKind::MsgSetup);
                self.send_ack(done, src, dst);
            }
        }
    }

    /// Delivers one in-order frame: terminal frame event, dependency edge,
    /// the message handler, and the receive-window advance.
    #[allow(clippy::too_many_arguments)]
    fn deliver_frame(
        &mut self,
        t: Cycles,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        msg: Msg,
        sent_at: Cycles,
        anchor: SpanId,
    ) {
        {
            // invariant: only called from on_frame with the transport attached
            let ctx = self.fault.as_mut().expect("deliver without fault ctx");
            let rx = ctx.rx.entry((src, dst)).or_default();
            debug_assert_eq!(rx.next_expected, seq, "out-of-order delivery");
            rx.next_expected = seq + 1;
        }
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::FrameAccepted {
            src,
            dst,
            seq,
            attempt,
        });
        #[cfg(not(feature = "verify"))]
        let _ = attempt;
        self.obs_edge(EdgeKind::Msg(msg.kind()), src, sent_at, dst, t, 0, anchor);
        self.handle_msg(dst, t, msg);
    }

    /// Emits a cumulative ack for link `src → dst` (travelling `dst → src`).
    fn send_ack(&mut self, t: Cycles, src: usize, dst: usize) {
        let params = self.params.clone();
        let (cum, lost) = {
            // invariant: only called from on_frame with the transport attached
            let ctx = self.fault.as_mut().expect("ack without fault ctx");
            let cum = ctx.rx.entry((src, dst)).or_default().next_expected;
            ctx.stats.acks_sent += 1;
            (cum, ctx.plan.drop_ack(dst, src, cum))
        };
        // The ack occupies the wire either way; a lost ack just never fires.
        let tr = self.net.transfer_timed(t, dst, src, ACK_BYTES, &params);
        self.ts_count(crate::timeseries::TsCounter::Messages, t, 1);
        self.ts_count(crate::timeseries::TsCounter::MessageBytes, t, ACK_BYTES);
        if !lost {
            self.queue
                .push(tr.arrival, Priority::Normal, Ev::Ack { src, dst, cum });
        }
    }

    /// A cumulative ack arrived back at the sender: retire covered frames
    /// and charge the absorption cost.
    pub(crate) fn on_ack(&mut self, t: Cycles, src: usize, dst: usize, cum: u64) {
        let retired = {
            // invariant: ack events only exist with the transport attached
            let ctx = self.fault.as_mut().expect("ack without fault ctx");
            let tx = ctx.tx.entry((src, dst)).or_default();
            let mut retired: u64 = 0;
            while let Some((&seq, _)) = tx.unacked.first_key_value() {
                if seq >= cum {
                    break;
                }
                tx.unacked.remove(&seq);
                retired += 1;
            }
            retired
        };
        for _ in 0..retired {
            self.ts_flight(src, dst, t, false);
        }
        let ack_oh = self.params.ack_overhead;
        self.interrupt_proc(src, t, ack_oh, Category::Ipc, SpanKind::MsgSetup);
    }

    /// A retransmit timer fired: if its frame is still unacked at the same
    /// attempt, bump the attempt, charge the resend and go again.
    pub(crate) fn on_retx_check(
        &mut self,
        t: Cycles,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    ) {
        let ack_oh = self.params.ack_overhead;
        let resend = {
            // invariant: retx events only exist with the transport attached
            let ctx = self.fault.as_mut().expect("retx without fault ctx");
            let tx = ctx.tx.entry((src, dst)).or_default();
            match tx.unacked.get_mut(&seq) {
                // Acked, or a newer attempt owns the timer: stale check.
                None => None,
                Some(e) if e.attempt != attempt => None,
                Some(e) => {
                    e.attempt += 1;
                    // invariant: the validated fault envelope (≤ 50% loss per
                    // attempt) makes 64 consecutive losses a 2^-64 event —
                    // reaching the cap means the plan or transport is broken
                    assert!(
                        e.attempt <= MAX_RETX_ATTEMPTS,
                        "frame {src}->{dst} seq {seq} exhausted {MAX_RETX_ATTEMPTS} attempts"
                    );
                    ctx.stats.retransmits += 1;
                    let bucket = ((e.attempt - 1) as usize).min(crate::stats::RETX_BUCKETS - 1);
                    ctx.stats.retx_by_attempt[bucket] += 1;
                    Some((e.attempt, e.msg.clone(), e.anchor))
                }
            }
        };
        let Some((next_attempt, msg, anchor)) = resend else {
            return;
        };
        self.ts_retransmit(src, dst, t);
        self.record(
            t,
            src,
            crate::trace::TraceKind::RetransmitTimeout { dst, seq },
        );
        self.record(
            t,
            src,
            crate::trace::TraceKind::Retransmit {
                dst,
                seq,
                attempt: next_attempt,
            },
        );
        // The timeout decision is receive-path-sized work; the resend itself
        // pays the full messaging overhead on the controller (I-modes) or
        // the processor.
        let decided =
            self.interrupt_proc(src, t, ack_oh, Category::Ipc, SpanKind::RetransmitTimeout);
        let offload = matches!(self.protocol, Protocol::TreadMarks(m) if m.offload());
        let injected = if offload {
            let oh = Controller::issue_cost(&self.params);
            let (s, end) = self.nodes[src].ctrl.run_io(decided, oh);
            self.note_ctrl(src, Engine::CtrlIo, CtrlCmd::Send, s, end);
            end
        } else {
            let oh = self.params.messaging_overhead;
            self.interrupt_proc(src, decided, oh, Category::Ipc, SpanKind::Retransmit)
        };
        self.send_frame(injected, src, dst, seq, next_attempt, msg, anchor);
    }

    /// Degradation policy: should this prefetch command be shed? True under
    /// a congestion window or when the issuing node's unacked backlog is at
    /// least [`SHED_UNACKED_MAX`] frames. Records the shed when it happens.
    pub(crate) fn shed_prefetch(&mut self, pid: usize, page: PageId, now: Cycles) -> bool {
        let shed = match self.fault.as_ref() {
            None => false,
            Some(ctx) => {
                ctx.plan.congested_at(now)
                    || ctx
                        .tx
                        .iter()
                        .filter(|((s, _), _)| *s == pid)
                        .map(|(_, tx)| tx.unacked.len())
                        .sum::<usize>()
                        >= SHED_UNACKED_MAX
            }
        };
        if shed {
            self.fault
                .as_mut()
                // invariant: `shed == true` implies the ctx matched `Some`
                // in the policy match above.
                .expect("shed without fault ctx")
                .stats
                .prefetch_shed += 1;
            self.record(now, pid, crate::trace::TraceKind::PrefetchShed { page });
            self.ts_count(crate::timeseries::TsCounter::PrefetchShed, now, 1);
        }
        shed
    }

    /// End-of-run drain: frames legally in flight (their message already
    /// delivered by another attempt) or stranded in a resequencing buffer
    /// get their terminal `FrameDropped` so the conservation law balances.
    pub(crate) fn drain_inflight_frames(&mut self) {
        let mut leftovers: Vec<(usize, usize, u64, u32)> = Vec::new();
        while let Some(ev) = self.queue.pop() {
            if let Ev::Frame {
                src,
                dst,
                seq,
                attempt,
                ..
            } = ev.payload
            {
                leftovers.push((src, dst, seq, attempt));
            }
        }
        if let Some(ctx) = self.fault.as_mut() {
            for ((src, dst), rx) in ctx.rx.iter_mut() {
                for (&seq, p) in rx.buffer.iter() {
                    leftovers.push((*src, *dst, seq, p.attempt));
                }
                rx.buffer.clear();
            }
            ctx.stats.frames_drained += leftovers.len() as u64;
        }
        leftovers.sort_unstable();
        for (src, dst, seq, attempt) in leftovers {
            let _ = (src, dst, seq, attempt);
            #[cfg(feature = "verify")]
            self.emit(crate::observe::ProtocolEvent::FrameDropped {
                src,
                dst,
                seq,
                attempt,
            });
        }
    }
}

/// What the receive window decided about an arriving frame.
enum FrameVerdict {
    Duplicate,
    Buffered,
    Deliver(Msg),
}
