//! Whole-stack oracle runs: every application under every protocol mode with
//! the `ncp2-verify` shadow oracle attached must finish with zero violations
//! — no data races under the observed happens-before order, every diff
//! complete, every write notice delivered, vector times monotone, message
//! traffic conserved.
//!
//! The oracle itself is then mutation-tested: a protocol with an injected
//! bug (a dropped write notice) must be caught, proving the checks are live.

use ncp2_apps::{run_app_with, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload};
use ncp2_core::observe::Violation;
use ncp2_core::{OverlapMode, Protocol, RunResult};
use ncp2_sim::SysParams;
use ncp2_verify::VerifyOracle;

const ALL_MODES: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

/// Runs `app` with the oracle attached (honoring the workload's annotated
/// benign races) and returns the result.
fn verified_run<W: Workload>(app: W, nprocs: usize, protocol: Protocol) -> RunResult {
    let params = SysParams::default().with_nprocs(nprocs);
    let racy = app.racy_ranges();
    run_app_with(params.clone(), protocol, app, |sim| {
        let mut oracle = VerifyOracle::new(&params, &protocol);
        for range in racy {
            oracle.exempt_range(range);
        }
        sim.attach_observer(Box::new(oracle));
    })
}

fn assert_clean<W: Workload + Clone>(app: W, nprocs: usize) {
    for protocol in ALL_MODES {
        let name = app.name();
        let result = verified_run(app.clone(), nprocs, protocol);
        assert!(
            result.violations.is_empty(),
            "{name} under {protocol} (nprocs={nprocs}): {:#?}",
            result.violations
        );
    }
}

#[test]
fn tsp_is_clean_under_every_protocol() {
    assert_clean(
        Tsp {
            cities: 6,
            prefix_depth: 2,
            seed: 11,
        },
        4,
    );
}

#[test]
fn water_is_clean_under_every_protocol() {
    assert_clean(
        Water {
            molecules: 8,
            steps: 1,
            seed: 12,
        },
        4,
    );
}

#[test]
fn radix_is_clean_under_every_protocol() {
    assert_clean(
        Radix {
            keys: 256,
            radix: 16,
            passes: 2,
            seed: 13,
        },
        4,
    );
}

#[test]
fn barnes_is_clean_under_every_protocol() {
    assert_clean(
        Barnes {
            bodies: 16,
            steps: 1,
            theta_16: 8,
            seed: 14,
        },
        4,
    );
}

#[test]
fn em3d_is_clean_under_every_protocol() {
    assert_clean(
        Em3d {
            nodes: 96,
            degree: 2,
            remote_pct: 25,
            iters: 2,
            seed: 15,
        },
        4,
    );
}

#[test]
fn ocean_is_clean_under_every_protocol() {
    assert_clean(Ocean { grid: 16, iters: 2 }, 4);
}

// ---------------------------------------------------------------------------
// Oracle sensitivity: mutation testing and a deliberately racy program
// ---------------------------------------------------------------------------

/// Producer/consumer over a barrier: P0 writes, everyone reads after the
/// barrier. Correct by construction — unless the protocol loses the notice.
#[derive(Clone)]
struct ProducerConsumer;

impl Workload for ProducerConsumer {
    fn name(&self) -> &'static str {
        "ProducerConsumer"
    }

    fn run(&self, ctx: &mut ncp2_apps::Ctx<'_>) -> u64 {
        if ctx.pid == 0 {
            ctx.write_u64(0, 0xFEED);
        }
        ctx.barrier();
        let v = ctx.read_u64(0);
        ctx.barrier();
        if ctx.pid == 0 {
            v
        } else {
            0
        }
    }
}

#[test]
fn dropped_write_notice_is_caught_by_the_oracle() {
    let params = SysParams::default().with_nprocs(2);
    let protocol = Protocol::TreadMarks(OverlapMode::Base);

    // Sanity: the unmutated protocol is clean on this workload.
    let clean = run_app_with(params.clone(), protocol, ProducerConsumer, |sim| {
        VerifyOracle::attach(sim, &params, &protocol);
    });
    assert!(clean.violations.is_empty(), "{:#?}", clean.violations);
    assert_eq!(clean.checksum, 0xFEED);

    // Mutant: the first foreign write notice is dropped on the floor.
    let mutant = run_app_with(params.clone(), protocol, ProducerConsumer, |sim| {
        VerifyOracle::attach(sim, &params, &protocol);
        sim.inject_drop_write_notice();
    });
    assert!(
        mutant.violations.iter().any(|v| matches!(
            v,
            Violation::WriteNoticeCoverage {
                pid: 1,
                owner: 0,
                ..
            }
        )),
        "write-notice mutation not detected: {:#?}",
        mutant.violations
    );
}

/// Two processors update the same word with no synchronization at all.
#[derive(Clone)]
struct RacyCounter;

impl Workload for RacyCounter {
    fn name(&self) -> &'static str {
        "RacyCounter"
    }

    fn run(&self, ctx: &mut ncp2_apps::Ctx<'_>) -> u64 {
        let v = ctx.read_u64(0);
        ctx.write_u64(0, v + 1);
        ctx.barrier();
        0
    }
}

#[test]
fn unsynchronized_updates_are_reported_as_a_race() {
    let result = verified_run(RacyCounter, 4, Protocol::TreadMarks(OverlapMode::Base));
    assert!(
        result
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Race { addr: 0, .. })),
        "racy program not detected: {:#?}",
        result.violations
    );
}

/// The same race must be visible under AURC, where the single-master data
/// plane makes the protocol "exact for data-race-free programs" — the race
/// detector is what certifies the precondition.
#[test]
fn unsynchronized_updates_are_reported_under_aurc() {
    let result = verified_run(RacyCounter, 4, Protocol::Aurc { prefetch: false });
    assert!(
        result
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Race { addr: 0, .. })),
        "racy program not detected under AURC: {:#?}",
        result.violations
    );
}
