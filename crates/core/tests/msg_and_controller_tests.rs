//! Supplementary unit coverage for message-flow corners that the big
//! integration tests exercise only implicitly.

use ncp2_core::{OverlapMode, Protocol, Simulation};
use ncp2_sim::{ProcOp, ProcPort, SysParams};

fn w(port: &ProcPort, addr: u64, v: u64) {
    port.call(ProcOp::Write {
        addr,
        bytes: 4,
        value: v,
    });
}
fn r(port: &ProcPort, addr: u64) -> u64 {
    port.call(ProcOp::Read { addr, bytes: 4 }).value()
}

/// Controller modes keep controller-busy accounting: I-modes use the
/// controller, Base/P never touch it, AURC has none.
#[test]
fn controller_busy_accounting_by_mode() {
    let body = |pid: usize, port: &ProcPort| {
        if pid == 0 {
            for i in 0..64 {
                w(port, i * 4, i + 1);
            }
        }
        port.call(ProcOp::Barrier(0));
        let _ = r(port, 0);
        port.call(ProcOp::Barrier(1));
        port.call(ProcOp::Finish);
    };
    let run = |proto| {
        Simulation::new(SysParams::default().with_nprocs(4), proto)
            .run(move |pid, port| body(pid, &port))
    };
    let base = run(Protocol::TreadMarks(OverlapMode::Base));
    let id = run(Protocol::TreadMarks(OverlapMode::ID));
    let aurc = run(Protocol::Aurc { prefetch: false });
    assert_eq!(base.nodes.iter().map(|n| n.controller_busy).sum::<u64>(), 0);
    assert!(id.nodes.iter().map(|n| n.controller_busy).sum::<u64>() > 0);
    assert_eq!(aurc.nodes.iter().map(|n| n.controller_busy).sum::<u64>(), 0);
}

/// Network traffic exists exactly when processors share (no self-traffic in
/// a partitioned workload beyond synchronization).
#[test]
fn message_counts_scale_with_sharing() {
    let run = |share: bool| {
        Simulation::new(
            SysParams::default().with_nprocs(4),
            Protocol::TreadMarks(OverlapMode::Base),
        )
        .run(move |pid, port| {
            // Partitioned: each proc touches its own page. Shared: everyone
            // reads page 0 afterwards.
            w(&port, 4096 * pid as u64, pid as u64 + 1);
            port.call(ProcOp::Barrier(0));
            if share {
                let _ = r(&port, 0);
            }
            port.call(ProcOp::Barrier(1));
            port.call(ProcOp::Finish);
        })
    };
    let partitioned = run(false);
    let shared = run(true);
    assert!(
        shared.net.bytes > partitioned.net.bytes,
        "sharing must add diff traffic ({} vs {})",
        shared.net.bytes,
        partitioned.net.bytes
    );
}

/// Barrier manager placement follows the barrier id.
#[test]
fn barrier_manager_follows_object_id() {
    // Managers service arrivals: their nodes record IPC or controller work.
    let run = |id: u32| {
        Simulation::new(
            SysParams::default().with_nprocs(4),
            Protocol::TreadMarks(OverlapMode::Base),
        )
        .run(move |pid, port| {
            w(&port, 4 * pid as u64, 1);
            port.call(ProcOp::Barrier(id));
            port.call(ProcOp::Finish);
        })
    };
    let b1 = run(1);
    let b2 = run(2);
    // The manager absorbs the arrival-processing IPC.
    assert!(b1.nodes[1].breakdown.ipc >= b1.nodes[3].breakdown.ipc);
    assert!(b2.nodes[2].breakdown.ipc >= b2.nodes[3].breakdown.ipc);
}

/// Unlock without contention leaves the token at the releaser; a later
/// remote acquire still finds it (token chain integrity across idle time).
#[test]
fn token_survives_idle_periods() {
    Simulation::new(
        SysParams::default().with_nprocs(4),
        Protocol::TreadMarks(OverlapMode::Base),
    )
    .run(|pid, port| {
        if pid == 3 {
            port.call(ProcOp::Lock(11));
            w(&port, 0, 42);
            port.call(ProcOp::Unlock(11));
        }
        port.call(ProcOp::Barrier(0));
        port.call(ProcOp::Barrier(1));
        port.call(ProcOp::Barrier(2));
        if pid == 0 {
            port.call(ProcOp::Lock(11));
            assert_eq!(r(&port, 0), 42);
            port.call(ProcOp::Unlock(11));
        }
        port.call(ProcOp::Finish);
    });
}

/// Reads of never-written pages are valid zeroes under every protocol.
#[test]
fn cold_pages_read_zero() {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::TreadMarks(OverlapMode::IPD),
        Protocol::Aurc { prefetch: true },
    ] {
        Simulation::new(SysParams::default().with_nprocs(2), proto).run(|_pid, port| {
            for page in 0..4u64 {
                assert_eq!(r(&port, page * 4096 + 128), 0);
            }
            port.call(ProcOp::Barrier(0));
            port.call(ProcOp::Finish);
        });
    }
}
