//! Edge-case protocol tests: heavy lock contention, barrier-object reuse,
//! AURC sharing-mode transitions, prefetch/invalidation races, and mixed
//! access widths.

use ncp2_core::{OverlapMode, Protocol, Simulation};
use ncp2_sim::{ProcOp, ProcPort, SysParams};

fn params(n: usize) -> SysParams {
    SysParams::default().with_nprocs(n)
}

fn r32(port: &ProcPort, addr: u64) -> u64 {
    port.call(ProcOp::Read { addr, bytes: 4 }).value()
}
fn w32(port: &ProcPort, addr: u64, v: u64) {
    port.call(ProcOp::Write {
        addr,
        bytes: 4,
        value: v,
    });
}

/// All 16 processors hammer one lock; mutual exclusion and notice chains
/// must survive the forwarding chain under maximum contention.
#[test]
fn sixteen_way_lock_contention() {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::Aurc { prefetch: false },
    ] {
        let result = Simulation::new(params(16), proto).run(|_pid, port| {
            for _ in 0..4 {
                port.call(ProcOp::Lock(5));
                let v = r32(&port, 256);
                port.call(ProcOp::Compute(25));
                w32(&port, 256, v + 1);
                port.call(ProcOp::Unlock(5));
            }
            port.call(ProcOp::Barrier(0));
            assert_eq!(r32(&port, 256), 64);
            port.call(ProcOp::Finish);
        });
        assert_eq!(
            result.nodes.iter().map(|s| s.lock_acquires).sum::<u64>(),
            64
        );
    }
}

/// Several distinct barrier objects interleaved with reuse across epochs.
#[test]
fn multiple_barrier_objects_reused() {
    Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::ID)).run(|pid, port| {
        for round in 0..3u64 {
            w32(&port, 4 * pid as u64, round * 10 + pid as u64);
            port.call(ProcOp::Barrier(2)); // manager = node 2
            for p in 0..4u64 {
                assert_eq!(r32(&port, 4 * p), round * 10 + p);
            }
            port.call(ProcOp::Barrier(7)); // manager = node 3
        }
        port.call(ProcOp::Finish);
    });
}

/// Mixed access widths (1/2/4/8 bytes) on the same page stay coherent.
#[test]
fn mixed_width_accesses() {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::TreadMarks(OverlapMode::ID),
        Protocol::Aurc { prefetch: false },
    ] {
        Simulation::new(params(4), proto).run(move |pid, port| {
            let base = 64 * pid as u64;
            port.call(ProcOp::Write {
                addr: base,
                bytes: 1,
                value: 0xAB,
            });
            port.call(ProcOp::Write {
                addr: base + 2,
                bytes: 2,
                value: 0xCDEF,
            });
            port.call(ProcOp::Write {
                addr: base + 4,
                bytes: 4,
                value: 0xDEADBEEF,
            });
            port.call(ProcOp::Write {
                addr: base + 8,
                bytes: 8,
                value: 0x0123_4567_89AB_CDEF,
            });
            port.call(ProcOp::Barrier(0));
            for p in 0..4u64 {
                let b = 64 * p;
                assert_eq!(port.call(ProcOp::Read { addr: b, bytes: 1 }).value(), 0xAB);
                assert_eq!(
                    port.call(ProcOp::Read {
                        addr: b + 2,
                        bytes: 2
                    })
                    .value(),
                    0xCDEF
                );
                assert_eq!(
                    port.call(ProcOp::Read {
                        addr: b + 4,
                        bytes: 4
                    })
                    .value(),
                    0xDEADBEEF
                );
                assert_eq!(
                    port.call(ProcOp::Read {
                        addr: b + 8,
                        bytes: 8
                    })
                    .value(),
                    0x0123_4567_89AB_CDEF
                );
            }
            port.call(ProcOp::Finish);
        });
    }
}

/// AURC mode ladder: 1 sharer = Single (no traffic), 2 = pairwise (updates,
/// no fetches), 3 = replacement, 4+ = home mode with re-fetches.
#[test]
fn aurc_mode_ladder() {
    let result = Simulation::new(params(8), Protocol::Aurc { prefetch: false }).run(|pid, port| {
        // Processors join the sharing set of page 0 one at a time.
        for joiner in 0..5usize {
            if pid == joiner {
                port.call(ProcOp::Lock(0));
                let v = r32(&port, 0);
                w32(&port, 0, v + 1);
                port.call(ProcOp::Unlock(0));
            }
            port.call(ProcOp::Barrier(0));
        }
        if pid == 0 {
            port.call(ProcOp::Lock(0));
            assert_eq!(r32(&port, 0), 5);
            port.call(ProcOp::Unlock(0));
        }
        port.call(ProcOp::Finish);
    });
    let updates: u64 = result.nodes.iter().map(|s| s.au_updates).sum();
    assert!(updates > 0, "pairwise/home writes must emit updates");
}

/// A page with a prefetch in flight that gets re-invalidated must fault
/// again rather than serve stale data.
#[test]
fn prefetch_reinvalidation_is_not_stale() {
    Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::IPD)).run(|pid, port| {
        for round in 1..6u64 {
            if pid == 0 {
                // Writer updates the page twice per round through two locks,
                // so readers' prefetches frequently race an invalidation.
                port.call(ProcOp::Lock(1));
                w32(&port, 0, round);
                port.call(ProcOp::Unlock(1));
                port.call(ProcOp::Lock(2));
                w32(&port, 4, round * 7);
                port.call(ProcOp::Unlock(2));
            }
            port.call(ProcOp::Barrier(0));
            let a = r32(&port, 0);
            let b = r32(&port, 4);
            assert_eq!(a, round, "stale word 0 in round {round}");
            assert_eq!(b, round * 7, "stale word 1 in round {round}");
            port.call(ProcOp::Barrier(0));
        }
        port.call(ProcOp::Finish);
    });
}

/// The overflow (whole-page) path: more writers' intervals than the
/// threshold forces full-page validation with correct contents.
#[test]
fn page_request_threshold_path_is_correct() {
    let mut p = params(8);
    p.page_req_threshold = 3; // force the overflow path quickly
    Simulation::new(p, Protocol::TreadMarks(OverlapMode::Base)).run(|pid, port| {
        // Everybody updates its own word of one page under a lock, many
        // times; proc 7 stays away, accumulating dozens of notices.
        for round in 0..6u64 {
            if pid != 7 {
                port.call(ProcOp::Lock(3));
                w32(&port, 4 * pid as u64, 100 * round + pid as u64);
                port.call(ProcOp::Unlock(3));
            }
            port.call(ProcOp::Barrier(0));
        }
        if pid == 7 {
            for p in 0..7u64 {
                assert_eq!(r32(&port, 4 * p), 500 + p);
            }
        }
        port.call(ProcOp::Finish);
    });
}

/// Locks with different managers and holders chain correctly when a node
/// re-acquires its own last lock (the manager shortcut).
#[test]
fn reacquire_shortcut_preserves_coherence() {
    Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::Base)).run(|pid, port| {
        if pid == 1 {
            for i in 0..5u64 {
                port.call(ProcOp::Lock(9));
                w32(&port, 0, i);
                port.call(ProcOp::Unlock(9));
            }
        }
        port.call(ProcOp::Barrier(0));
        if pid == 2 {
            port.call(ProcOp::Lock(9));
            assert_eq!(r32(&port, 0), 4);
            port.call(ProcOp::Unlock(9));
        }
        port.call(ProcOp::Barrier(0));
        port.call(ProcOp::Finish);
    });
}
