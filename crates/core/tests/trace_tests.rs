//! Tests for the optional protocol event trace.

use ncp2_core::{trace_csv, OverlapMode, Protocol, Simulation, TraceKind};
use ncp2_sim::{ProcOp, SysParams};

fn run_traced(proto: Protocol) -> ncp2_core::RunResult {
    let params = SysParams {
        trace: true,
        ..SysParams::default().with_nprocs(4)
    };
    Simulation::new(params, proto).run(|pid, port| {
        port.call(ProcOp::Lock(1));
        let v = port.call(ProcOp::Read { addr: 0, bytes: 4 }).value();
        port.call(ProcOp::Write {
            addr: 0,
            bytes: 4,
            value: v + pid as u64 + 1,
        });
        port.call(ProcOp::Unlock(1));
        port.call(ProcOp::Barrier(0));
        port.call(ProcOp::Finish);
    })
}

#[test]
fn trace_records_the_protocol_story() {
    let r = run_traced(Protocol::TreadMarks(OverlapMode::Base));
    assert!(!r.trace.is_empty(), "tracing was enabled");
    let count = |pred: fn(&TraceKind) -> bool| r.trace.iter().filter(|e| pred(&e.kind)).count();
    assert_eq!(count(|k| matches!(k, TraceKind::LockAcquired { .. })), 4);
    assert_eq!(count(|k| matches!(k, TraceKind::BarrierReleased)), 4);
    assert!(
        count(|k| matches!(k, TraceKind::Fault { .. })) >= 3,
        "later acquirers fault"
    );
    assert!(count(|k| matches!(k, TraceKind::MsgSent { .. })) > 8);
    // Timestamps are sane and non-decreasing is NOT required (events from
    // different nodes interleave), but every event fits inside the run.
    assert!(r
        .trace
        .iter()
        .all(|e| e.time <= r.total_cycles && e.node < 4));
}

#[test]
fn trace_is_off_by_default() {
    let r = Simulation::new(
        SysParams::default().with_nprocs(2),
        Protocol::TreadMarks(OverlapMode::Base),
    )
    .run(|_, port| {
        port.call(ProcOp::Write {
            addr: 0,
            bytes: 4,
            value: 1,
        });
        port.call(ProcOp::Barrier(0));
        port.call(ProcOp::Finish);
    });
    assert!(r.trace.is_empty());
}

#[test]
fn trace_renders_to_csv() {
    let r = run_traced(Protocol::Aurc { prefetch: false });
    let csv = trace_csv(&r.trace);
    assert_eq!(csv.lines().count(), r.trace.len() + 1);
    assert!(csv.contains("msg_sent"));
    assert!(csv.contains("lock_acquired"));
}

#[test]
fn traced_and_untraced_runs_have_identical_timing() {
    let traced = run_traced(Protocol::TreadMarks(OverlapMode::ID));
    let untraced = {
        let params = SysParams {
            trace: false,
            ..SysParams::default().with_nprocs(4)
        };
        Simulation::new(params, Protocol::TreadMarks(OverlapMode::ID)).run(|pid, port| {
            port.call(ProcOp::Lock(1));
            let v = port.call(ProcOp::Read { addr: 0, bytes: 4 }).value();
            port.call(ProcOp::Write {
                addr: 0,
                bytes: 4,
                value: v + pid as u64 + 1,
            });
            port.call(ProcOp::Unlock(1));
            port.call(ProcOp::Barrier(0));
            port.call(ProcOp::Finish);
        })
    };
    assert_eq!(
        traced.total_cycles, untraced.total_cycles,
        "tracing must be timing-neutral"
    );
}

#[test]
fn new_event_kinds_fire_under_the_right_modes() {
    // Base: diffs are created and applied by the processors themselves.
    let base = run_traced(Protocol::TreadMarks(OverlapMode::Base));
    let count = |r: &ncp2_core::RunResult, pred: fn(&TraceKind) -> bool| {
        r.trace.iter().filter(|e| pred(&e.kind)).count()
    };
    assert!(
        count(&base, |k| matches!(k, TraceKind::DiffCreated { .. })) > 0,
        "writes under locks force diffs"
    );
    assert!(count(&base, |k| matches!(k, TraceKind::DiffApplied { .. })) > 0);
    assert_eq!(
        count(&base, |k| matches!(k, TraceKind::ControllerCommand { .. })),
        0,
        "Base has no protocol controller"
    );

    // I+D: the controller executes twin/diff/send commands on the nodes'
    // behalf, and every command is traced.
    let id = run_traced(Protocol::TreadMarks(OverlapMode::ID));
    assert!(count(&id, |k| matches!(k, TraceKind::ControllerCommand { .. })) > 0);

    // I+P+D: completions never outnumber issues (prefetches still in
    // flight when the run ends are the only legal imbalance), every
    // completion is preceded by its own issue, and the trace agrees with
    // the per-node counters.
    let ipd = run_traced(Protocol::TreadMarks(OverlapMode::IPD));
    let issued = count(&ipd, |k| matches!(k, TraceKind::PrefetchIssued { .. }));
    assert!(issued > 0, "the shared page is invalid at lock acquire");
    for e in &ipd.trace {
        let TraceKind::PrefetchCompleted { page } = e.kind else {
            continue;
        };
        assert!(
            ipd.trace.iter().any(|i| i.node == e.node
                && i.time <= e.time
                && matches!(i.kind, TraceKind::PrefetchIssued { page: p } if p == page)),
            "completion of page {page} at P{} without a prior issue",
            e.node
        );
    }
    let completed = count(&ipd, |k| matches!(k, TraceKind::PrefetchCompleted { .. }));
    assert!(completed <= issued);
    let counted: u64 = ipd.nodes.iter().map(|n| n.prefetches).sum();
    assert_eq!(
        issued as u64, counted,
        "trace and stats agree on prefetches"
    );
}
