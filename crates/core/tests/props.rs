//! Property-based tests on the protocol data structures: diffs, vector
//! timestamps, dirty vectors and intervals.

use ncp2_core::bitvec::DirtyVec;
use ncp2_core::diff::Diff;
use ncp2_core::interval::{IntervalAnnouncement, IntervalStore};
use ncp2_core::page::PageBuf;
use ncp2_core::vtime::VectorTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn page_from(words: &BTreeMap<u16, u32>) -> PageBuf {
    let mut p = PageBuf::new(4096);
    for (&i, &v) in words {
        p.set_word(i as usize % 1024, v);
    }
    p
}

proptest! {
    /// twin-diff(current, twin) applied to twin reproduces current exactly.
    #[test]
    fn diff_roundtrip(
        twin_words in prop::collection::btree_map(0u16..1024, any::<u32>(), 0..64),
        cur_words in prop::collection::btree_map(0u16..1024, any::<u32>(), 0..64)
    ) {
        let twin = page_from(&twin_words);
        let mut cur = twin.clone();
        for (&i, &v) in &cur_words {
            cur.set_word(i as usize % 1024, v);
        }
        let d = Diff::from_twin(0, 0, 1, &cur, &twin);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
    }

    /// A dirty-vector diff captures exactly the flagged words, and its wire
    /// size follows the paper's words + bit-vector encoding.
    #[test]
    fn dirty_vec_diff_is_exact(
        dirty in prop::collection::btree_set(0usize..1024, 0..256),
        values in prop::collection::vec(any::<u32>(), 1024)
    ) {
        let mut page = PageBuf::new(4096);
        for (i, &v) in values.iter().enumerate() {
            page.set_word(i, v);
        }
        let mut dv = DirtyVec::new(1024);
        for &i in &dirty {
            dv.set(i);
        }
        let d = Diff::from_dirty_vec(0, 0, 1, &page, &dv);
        prop_assert_eq!(d.word_count(), dirty.len() as u64);
        prop_assert_eq!(d.encoded_bytes(1024), 16 + 128 + 4 * dirty.len() as u64);
        let mut target = PageBuf::new(4096);
        d.apply(&mut target);
        for &i in &dirty {
            prop_assert_eq!(target.word(i), values[i]);
        }
    }

    /// Diffs over disjoint word sets commute under application.
    #[test]
    fn disjoint_diffs_commute(
        a_words in prop::collection::btree_set(0usize..512, 1..64),
        b_words in prop::collection::btree_set(512usize..1024, 1..64),
        seed in any::<u32>()
    ) {
        let base = PageBuf::new(4096);
        let mut pa = base.clone();
        for &i in &a_words { pa.set_word(i, seed.wrapping_add(i as u32)); }
        let mut pb = base.clone();
        for &i in &b_words { pb.set_word(i, seed.wrapping_mul(3).wrapping_add(i as u32)); }
        let da = Diff::from_twin(0, 0, 1, &pa, &base);
        let db = Diff::from_twin(0, 1, 1, &pb, &base);
        let mut t1 = base.clone();
        da.apply(&mut t1);
        db.apply(&mut t1);
        let mut t2 = base.clone();
        db.apply(&mut t2);
        da.apply(&mut t2);
        prop_assert_eq!(t1, t2);
    }

    /// Vector-time merge is a join: commutative, associative, idempotent,
    /// and an upper bound of its arguments.
    #[test]
    fn vector_time_merge_is_a_join(
        a in prop::collection::vec(0u32..100, 8),
        b in prop::collection::vec(0u32..100, 8),
        c in prop::collection::vec(0u32..100, 8)
    ) {
        let vt = |xs: &[u32]| {
            let mut v = VectorTime::new(xs.len());
            for (i, &x) in xs.iter().enumerate() {
                v.observe(i, x);
            }
            v
        };
        let (va, vb, vc) = (vt(&a), vt(&b), vt(&c));
        let mut ab = va.clone();
        ab.merge(&vb);
        let mut ba = vb.clone();
        ba.merge(&va);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.covers(&va) && ab.covers(&vb));
        let mut ab_c = ab.clone();
        ab_c.merge(&vc);
        let mut bc = vb.clone();
        bc.merge(&vc);
        let mut a_bc = va.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
        let mut aa = va.clone();
        aa.merge(&va);
        prop_assert_eq!(aa, va);
    }

    /// The component sum is a linear extension of the coverage order — the
    /// property the causal diff-apply sort relies on.
    #[test]
    fn vt_sum_extends_coverage(
        a in prop::collection::vec(0u32..50, 8),
        extra in prop::collection::vec(0u32..50, 8)
    ) {
        let mut va = VectorTime::new(8);
        for (i, &x) in a.iter().enumerate() {
            va.observe(i, x);
        }
        let mut vb = va.clone();
        for (i, &x) in extra.iter().enumerate() {
            vb.observe(i, va.get(i) + x);
        }
        let sum = |v: &VectorTime| v.iter().map(|(_, x)| x as u64).sum::<u64>();
        prop_assert!(vb.covers(&va));
        prop_assert!(sum(&vb) >= sum(&va));
        if vb != va {
            prop_assert!(sum(&vb) > sum(&va), "strict coverage must give a strictly larger sum");
        }
    }

    /// `missing_for` returns exactly the recorded intervals not covered by
    /// the inquirer, and re-recording is idempotent.
    #[test]
    fn interval_store_missing_for_is_exact(
        ivls in prop::collection::btree_set((0usize..4, 1u32..20), 0..40),
        seen in prop::collection::vec(0u32..20, 4)
    ) {
        let mut store = IntervalStore::new();
        for &(owner, id) in &ivls {
            let mut vt = VectorTime::new(4);
            vt.observe(owner, id);
            let ann = IntervalAnnouncement { owner, id, vt, pages: vec![id as u64] };
            store.record(ann.clone());
            store.record(ann); // idempotent
        }
        prop_assert_eq!(store.len(), ivls.len());
        let mut their = VectorTime::new(4);
        for (i, &s) in seen.iter().enumerate() {
            their.observe(i, s);
        }
        let missing = store.missing_for(&their);
        let expect: Vec<(usize, u32)> = ivls
            .iter()
            .copied()
            .filter(|&(o, i)| i > seen[o])
            .collect();
        let got: Vec<(usize, u32)> = missing.iter().map(|a| (a.owner, a.id)).collect();
        prop_assert_eq!(got, expect);
    }

    /// DirtyVec agrees with a reference set implementation.
    #[test]
    fn dirty_vec_matches_reference_set(ops in prop::collection::vec(0usize..1024, 0..300)) {
        let mut dv = DirtyVec::new(1024);
        let mut set = std::collections::BTreeSet::new();
        for &i in &ops {
            dv.set(i);
            set.insert(i);
        }
        prop_assert_eq!(dv.count() as usize, set.len());
        prop_assert_eq!(dv.iter_set().collect::<Vec<_>>(), set.iter().copied().collect::<Vec<_>>());
        dv.clear();
        prop_assert!(dv.is_clean());
    }
}
