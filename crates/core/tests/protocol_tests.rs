//! End-to-end protocol tests: tiny workloads driven through the full
//! simulated machine, checking both data correctness (the DSM moves real
//! bytes) and structural timing properties.

use ncp2_core::{OverlapMode, Protocol, Simulation};
use ncp2_sim::{ProcOp, SysParams};

const ALL_PROTOCOLS: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

fn params(n: usize) -> SysParams {
    SysParams::default().with_nprocs(n)
}

fn read_u32(port: &ncp2_sim::ProcPort, addr: u64) -> u64 {
    port.call(ProcOp::Read { addr, bytes: 4 }).value()
}

fn write_u32(port: &ncp2_sim::ProcPort, addr: u64, value: u64) {
    port.call(ProcOp::Write {
        addr,
        bytes: 4,
        value,
    });
}

/// Producer/consumer through a barrier: proc 0 writes, everyone reads.
#[test]
fn barrier_propagates_writes_under_every_protocol() {
    for proto in ALL_PROTOCOLS {
        let sim = Simulation::new(params(4), proto);
        let result = sim.run(move |pid, port| {
            if pid == 0 {
                for i in 0..64u64 {
                    write_u32(&port, i * 4, 1000 + i);
                }
            }
            port.call(ProcOp::Barrier(0));
            for i in 0..64u64 {
                let v = read_u32(&port, i * 4);
                assert_eq!(v, 1000 + i, "{proto:?}: proc {pid} read stale word {i}");
            }
            port.call(ProcOp::Barrier(1));
            port.call(ProcOp::Finish);
        });
        assert!(result.total_cycles > 0);
        assert_eq!(result.nodes.len(), 4);
    }
}

/// Migratory counter under a lock: the canonical LRC litmus test.
#[test]
fn lock_protected_counter_is_coherent() {
    for proto in ALL_PROTOCOLS {
        let n = 4;
        let rounds = 8u64;
        let sim = Simulation::new(params(n), proto);
        let result = sim.run(move |pid, port| {
            for _ in 0..rounds {
                port.call(ProcOp::Lock(3));
                let v = read_u32(&port, 0);
                port.call(ProcOp::Compute(50));
                write_u32(&port, 0, v + 1);
                port.call(ProcOp::Unlock(3));
            }
            port.call(ProcOp::Barrier(0));
            let total = read_u32(&port, 0);
            assert_eq!(
                total,
                n as u64 * rounds,
                "{proto:?}: proc {pid} saw bad counter"
            );
            port.call(ProcOp::Finish);
        });
        let acquires: u64 = result.nodes.iter().map(|s| s.lock_acquires).sum();
        assert_eq!(
            acquires,
            n as u64 * rounds,
            "{proto:?}: wrong acquire count"
        );
    }
}

/// False sharing: every processor owns a disjoint word range of the same
/// page; after a barrier everyone must see everyone's words (diff merge).
#[test]
fn false_sharing_within_one_page_merges() {
    for proto in ALL_PROTOCOLS {
        let n = 4;
        let sim = Simulation::new(params(n), proto);
        sim.run(move |pid, port| {
            for round in 1..4u64 {
                for i in 0..8u64 {
                    let word = pid as u64 * 8 + i;
                    write_u32(&port, word * 4, round * 100 + word);
                }
                port.call(ProcOp::Barrier(0));
                for word in 0..(n as u64 * 8) {
                    let v = read_u32(&port, word * 4);
                    assert_eq!(
                        v,
                        round * 100 + word,
                        "{proto:?}: round {round} word {word}"
                    );
                }
                port.call(ProcOp::Barrier(1));
            }
            port.call(ProcOp::Finish);
        });
    }
}

/// Chained producer/consumer through locks only (no barrier in the middle):
/// tests write-notice propagation along the lock-grant chain.
#[test]
fn lock_chain_carries_notices() {
    for proto in ALL_PROTOCOLS {
        let n = 4;
        let sim = Simulation::new(params(n), proto);
        sim.run(move |pid, port| {
            // Each proc appends its id to a log guarded by the lock.
            port.call(ProcOp::Lock(0));
            let len = read_u32(&port, 0);
            write_u32(&port, 4 * (1 + len), pid as u64 + 77);
            write_u32(&port, 0, len + 1);
            port.call(ProcOp::Unlock(0));
            port.call(ProcOp::Barrier(9));
            let len = read_u32(&port, 0);
            assert_eq!(len, n as u64, "{proto:?}: log length");
            let mut seen: Vec<u64> = (1..=n as u64).map(|i| read_u32(&port, 4 * i)).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![77, 78, 79, 80], "{proto:?}: log contents");
            port.call(ProcOp::Finish);
        });
    }
}

/// Bit-for-bit determinism: identical runs produce identical cycle counts
/// and breakdowns.
#[test]
fn runs_are_deterministic() {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::TreadMarks(OverlapMode::IPD),
        Protocol::Aurc { prefetch: true },
    ] {
        let run = |_: usize| {
            let sim = Simulation::new(params(4), proto);
            sim.run(|pid, port| {
                for r in 0..6u64 {
                    port.call(ProcOp::Lock(1));
                    let v = read_u32(&port, 128);
                    write_u32(&port, 128, v + pid as u64 + r);
                    port.call(ProcOp::Unlock(1));
                    port.call(ProcOp::Compute(200));
                    port.call(ProcOp::Barrier(0));
                }
                port.call(ProcOp::Finish);
            })
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.total_cycles, b.total_cycles, "{proto:?} nondeterministic");
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(
                x.breakdown, y.breakdown,
                "{proto:?} nondeterministic breakdown"
            );
        }
    }
}

/// A sequential (1-processor) run bypasses the protocol: no faults, no
/// synchronization cost beyond the nominal op charges.
#[test]
fn sequential_mode_is_protocol_free() {
    let sim = Simulation::new(params(1), Protocol::TreadMarks(OverlapMode::Base));
    let result = sim.run(|_, port| {
        for i in 0..256u64 {
            write_u32(&port, i * 4, i);
        }
        for i in 0..256u64 {
            assert_eq!(read_u32(&port, i * 4), i);
        }
        port.call(ProcOp::Lock(0));
        port.call(ProcOp::Unlock(0));
        port.call(ProcOp::Barrier(0));
        port.call(ProcOp::Finish);
    });
    let s = &result.nodes[0];
    assert_eq!(s.faults, 0);
    assert_eq!(s.diffs_created, 0);
    assert_eq!(result.net.messages, 0);
    assert!(s.breakdown.busy > 0);
}

/// Overlap-mode structure: hardware diffs eliminate twins; Base does not.
#[test]
fn hw_diffs_eliminate_twins() {
    let worker = |pid: usize, port: &ncp2_sim::ProcPort| {
        for r in 0..4u64 {
            if pid == 0 {
                for i in 0..32u64 {
                    write_u32(port, i * 4, r * 10 + i);
                }
            }
            port.call(ProcOp::Barrier(0));
            let _ = read_u32(port, 0);
            port.call(ProcOp::Barrier(1));
        }
        port.call(ProcOp::Finish);
    };
    let base = Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::Base))
        .run(move |pid, port| worker(pid, &port));
    let hw = Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::ID))
        .run(move |pid, port| worker(pid, &port));
    let base_twins: u64 = base.nodes.iter().map(|s| s.twin_cycles).sum();
    let hw_twins: u64 = hw.nodes.iter().map(|s| s.twin_cycles).sum();
    assert!(base_twins > 0, "Base should create twins");
    assert_eq!(hw_twins, 0, "I+D must not create twins");
    assert!(base.nodes.iter().map(|s| s.diffs_created).sum::<u64>() > 0);
    assert!(hw.nodes.iter().map(|s| s.diffs_created).sum::<u64>() > 0);
    // Diff work costs far fewer cycles on the DMA engine.
    assert!(hw.diff_total_cycles() < base.diff_total_cycles());
}

/// Prefetching modes issue prefetches for re-invalidated referenced pages,
/// and useless prefetches are detected.
#[test]
fn prefetch_heuristic_fires_and_tracks_uselessness() {
    let result =
        Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::IP)).run(|pid, port| {
            // Proc 0 repeatedly rewrites a block everyone reads, so readers'
            // pages are invalidated and re-referenced every round.
            for r in 1..6u64 {
                if pid == 0 {
                    for i in 0..16u64 {
                        write_u32(&port, i * 4, r + i);
                    }
                }
                port.call(ProcOp::Barrier(0));
                if pid != 0 {
                    let v = read_u32(&port, 0);
                    assert_eq!(v, r);
                }
                port.call(ProcOp::Barrier(1));
            }
            port.call(ProcOp::Finish);
        });
    let (issued, _useless) = result.prefetch_totals();
    assert!(issued > 0, "prefetches should have been issued");
    // The same workload under Base issues none.
    let base =
        Simulation::new(params(4), Protocol::TreadMarks(OverlapMode::Base)).run(|pid, port| {
            for r in 1..6u64 {
                if pid == 0 {
                    write_u32(&port, 0, r);
                }
                port.call(ProcOp::Barrier(0));
                if pid != 0 {
                    let _ = read_u32(&port, 0);
                }
                port.call(ProcOp::Barrier(1));
            }
            port.call(ProcOp::Finish);
        });
    assert_eq!(base.prefetch_totals().0, 0);
}

/// AURC: two sharers never fault after pairing; a third+fourth force home
/// mode and fetches resume.
#[test]
fn aurc_pairwise_sharing_avoids_faults() {
    // Two processors ping-pong a flag page; the other two stay out of it.
    let result = Simulation::new(params(4), Protocol::Aurc { prefetch: false }).run(|pid, port| {
        if pid < 2 {
            for r in 0..10u64 {
                port.call(ProcOp::Lock(0));
                let v = read_u32(&port, 0);
                write_u32(&port, 0, v + 1);
                port.call(ProcOp::Unlock(0));
                port.call(ProcOp::Compute(100 + r));
            }
        }
        port.call(ProcOp::Barrier(0));
        port.call(ProcOp::Finish);
    });
    // Pairwise: after the initial pairing fetch, no page fetches from locks.
    let fetches: u64 = result.nodes.iter().map(|s| s.page_fetches).sum();
    assert!(
        fetches <= 2,
        "pairwise sharing should avoid repeated fetches, got {fetches}"
    );
    let updates: u64 = result.nodes.iter().map(|s| s.au_updates).sum();
    assert!(updates > 0, "writes must generate automatic updates");
}

/// AURC with >2 sharers reverts to home mode and pages are re-fetched after
/// invalidation.
#[test]
fn aurc_home_mode_faults_after_invalidation() {
    let result =
        Simulation::new(params(4), Protocol::Aurc { prefetch: false }).run(|_pid, port| {
            for r in 1..5u64 {
                port.call(ProcOp::Lock(0));
                let v = read_u32(&port, 0);
                write_u32(&port, 0, v + 1);
                port.call(ProcOp::Unlock(0));
                port.call(ProcOp::Compute(50 + r));
            }
            port.call(ProcOp::Barrier(0));
            let total = read_u32(&port, 0);
            assert_eq!(total, 16);
            port.call(ProcOp::Finish);
        });
    let fetches: u64 = result.nodes.iter().map(|s| s.page_fetches).sum();
    assert!(
        fetches >= 3,
        "home mode should force re-fetches, got {fetches}"
    );
}

/// The execution-time breakdown accounts for every processor cycle: the
/// categories sum to each node's final clock.
#[test]
fn breakdown_sums_to_total_time() {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::Aurc { prefetch: false },
    ] {
        let result = Simulation::new(params(4), proto).run(|pid, port| {
            for _ in 0..4u64 {
                port.call(ProcOp::Lock(0));
                let v = read_u32(&port, 64);
                write_u32(&port, 64, v + pid as u64);
                port.call(ProcOp::Unlock(0));
                port.call(ProcOp::Barrier(0));
            }
            port.call(ProcOp::Finish);
        });
        for (pid, s) in result.nodes.iter().enumerate() {
            let total = s.breakdown.total();
            assert!(total > 0, "{proto:?}: node {pid} recorded no time");
            assert!(
                total <= result.total_cycles + 1,
                "{proto:?}: node {pid} breakdown {total} exceeds run {t}",
                t = result.total_cycles
            );
        }
    }
}
