//! End-to-end hardened-transport runs: applications under fault injection
//! must produce **checksums identical to the fault-free run** with **zero
//! oracle violations** — message loss, duplication, reordering, corruption
//! and controller outages are all absorbed by the ack/timeout/retransmit
//! machinery without perturbing what the programs compute.
//!
//! The `fault` feature reaches this test graph through the `ncp2-verify`
//! dev-dependency's pass-through feature (resolver-2 unification), exactly
//! like `verify` itself.

use ncp2_apps::{run_app_with, Em3d, Tsp, Workload};
use ncp2_core::observe::Violation;
use ncp2_core::{FaultPlan, OverlapMode, Protocol, RunResult};
use ncp2_fault::{LinkWindow, TargetedDrop, Window};
use ncp2_sim::SysParams;
use ncp2_verify::VerifyOracle;

const ALL_MODES: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

fn tsp() -> Tsp {
    Tsp {
        cities: 6,
        prefix_depth: 2,
        seed: 11,
    }
}

fn em3d() -> Em3d {
    Em3d {
        nodes: 96,
        degree: 2,
        remote_pct: 25,
        iters: 2,
        seed: 15,
    }
}

/// A run with the oracle attached and (optionally) a fault plan.
fn run<W: Workload>(app: W, protocol: Protocol, plan: Option<FaultPlan>) -> RunResult {
    let params = SysParams::default().with_nprocs(4);
    let racy = app.racy_ranges();
    run_app_with(params.clone(), protocol, app, move |sim| {
        let mut oracle = VerifyOracle::new(&params, &protocol);
        for range in racy {
            oracle.exempt_range(range);
        }
        sim.attach_observer(Box::new(oracle));
        if let Some(plan) = plan {
            sim.attach_fault_plan(plan);
        }
    })
}

/// The chaos plan: 1% drop + 0.5% duplication + 0.5% corruption on every
/// link, one latency-spike window (reorders frames), ack loss enabled.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC4A05,
        drop_permille: 10,
        dup_permille: 5,
        corrupt_permille: 5,
        ack_faults: true,
        spikes: vec![LinkWindow {
            src: 0,
            dst: 1,
            start: 0,
            end: 500_000,
            extra: 3_000,
        }],
        ..FaultPlan::none()
    }
}

#[test]
fn faulted_runs_preserve_checksums_and_pass_the_oracle() {
    let mut total_retransmits = 0u64;
    for protocol in ALL_MODES {
        let clean = run(tsp(), protocol, None);
        assert!(clean.violations.is_empty(), "{:#?}", clean.violations);
        let faulted = run(tsp(), protocol, Some(chaos_plan()));
        assert_eq!(
            clean.checksum, faulted.checksum,
            "checksum diverged under faults ({protocol})"
        );
        assert!(
            faulted.violations.is_empty(),
            "oracle violations under faults ({protocol}): {:#?}",
            faulted.violations
        );
        assert!(
            faulted.fault.injected() > 0,
            "chaos plan injected nothing ({protocol})"
        );
        total_retransmits += faulted.fault.retransmits;
    }
    assert!(
        total_retransmits > 0,
        "1% drop across all modes never retransmitted"
    );
}

#[test]
fn em3d_survives_chaos_under_full_overlap() {
    for protocol in [
        Protocol::TreadMarks(OverlapMode::IPD),
        Protocol::Aurc { prefetch: true },
    ] {
        let clean = run(em3d(), protocol, None);
        let faulted = run(em3d(), protocol, Some(chaos_plan()));
        assert_eq!(clean.checksum, faulted.checksum, "{protocol}");
        assert!(faulted.violations.is_empty(), "{:#?}", faulted.violations);
    }
}

#[test]
fn targeted_drop_is_recovered_by_retransmission() {
    let protocol = Protocol::TreadMarks(OverlapMode::Base);
    let clean = run(tsp(), protocol, None);
    let plan = FaultPlan {
        seed: 1,
        targeted_drops: vec![TargetedDrop {
            src: 0,
            dst: 1,
            nth: 0,
        }],
        ..FaultPlan::none()
    };
    let faulted = run(tsp(), protocol, Some(plan));
    assert_eq!(clean.checksum, faulted.checksum);
    assert!(faulted.violations.is_empty(), "{:#?}", faulted.violations);
    assert_eq!(faulted.fault.drops_injected, 1);
    assert!(faulted.fault.retransmits >= 1);
    assert!(
        faulted.fault.retx_by_attempt[0] >= 1,
        "first-retry histogram bucket empty: {:?}",
        faulted.fault.retx_by_attempt
    );
}

#[test]
fn congestion_window_sheds_prefetches_without_changing_results() {
    let protocol = Protocol::TreadMarks(OverlapMode::IP);
    let clean = run(tsp(), protocol, None);
    let plan = FaultPlan {
        seed: 2,
        congestion: vec![Window {
            start: 0,
            end: u64::MAX,
            extra: 0,
        }],
        ..FaultPlan::none()
    };
    let faulted = run(tsp(), protocol, Some(plan));
    assert_eq!(clean.checksum, faulted.checksum);
    assert!(faulted.violations.is_empty(), "{:#?}", faulted.violations);
    assert!(
        faulted.fault.prefetch_shed > 0,
        "run-long congestion window shed no prefetches"
    );
}

#[test]
fn inactive_plan_is_byte_identical_to_no_plan() {
    // `FaultPlan::none()` attaches nothing: the legacy send path runs and
    // results are bit-for-bit those of a run with no plan at all — the
    // zero-cost-when-unused contract.
    for protocol in ALL_MODES {
        let a = run(tsp(), protocol, None);
        let b = run(tsp(), protocol, Some(FaultPlan::none()));
        assert_eq!(a.total_cycles, b.total_cycles, "{protocol}");
        assert_eq!(a.checksum, b.checksum, "{protocol}");
        assert_eq!(a.nodes, b.nodes, "{protocol}");
        assert_eq!(a.net, b.net, "{protocol}");
        assert_eq!(a.fault, b.fault, "{protocol}");
        assert_eq!(b.fault, Default::default(), "{protocol}");
    }
}

#[test]
fn same_fault_seed_is_bit_identical() {
    let protocol = Protocol::TreadMarks(OverlapMode::IPD);
    let a = run(tsp(), protocol, Some(chaos_plan()));
    let b = run(tsp(), protocol, Some(chaos_plan()));
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.fault, b.fault);
}

#[test]
fn silently_lost_frame_is_caught_by_the_oracle() {
    // An active plan with zero behavioral faults (a 0-extra spike) engages
    // the transport framing; the armed mutation then consumes one intact
    // frame without a terminal event. The retransmit-aware conservation law
    // must flag it even though the run still completes (the retransmission
    // redelivers the message).
    let params = SysParams::default().with_nprocs(2);
    let protocol = Protocol::TreadMarks(OverlapMode::Base);
    let neutral = FaultPlan {
        seed: 3,
        spikes: vec![LinkWindow {
            src: 0,
            dst: 1,
            start: 0,
            end: 1,
            extra: 0,
        }],
        ..FaultPlan::none()
    };
    let mutant = run_app_with(params.clone(), protocol, tsp(), move |sim| {
        VerifyOracle::attach(sim, &params, &protocol);
        sim.attach_fault_plan(neutral);
        sim.inject_silent_frame_loss();
    });
    assert!(
        mutant.violations.iter().any(|v| matches!(
            v,
            Violation::MessageConservation { detail } if detail.contains("never")
        )),
        "silent frame loss not detected: {:#?}",
        mutant.violations
    );
}
