//! Property-based tests for the mesh network model.

use ncp2_net::{Mesh, Network};
use ncp2_sim::SysParams;
use proptest::prelude::*;

proptest! {
    /// Routes are minimal (Manhattan length), start/end correctly, and the
    /// link ids they use are within bounds.
    #[test]
    fn routes_are_minimal_and_in_bounds(n in 1usize..33, src in 0usize..33, dst in 0usize..33) {
        let m = Mesh::new(n);
        let (src, dst) = (src % n, dst % n);
        let route = m.route(src, dst);
        prop_assert_eq!(route.len() as u64, m.hops(src, dst));
        for &l in &route {
            prop_assert!(l < m.link_count().max(1));
        }
    }

    /// Hop counts are a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn hops_form_a_metric(n in 2usize..33, a in 0usize..33, b in 0usize..33, c in 0usize..33) {
        let m = Mesh::new(n);
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(m.hops(a, b), m.hops(b, a));
        prop_assert_eq!(m.hops(a, a), 0);
        if a != b {
            prop_assert!(m.hops(a, b) > 0);
        }
        prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
    }

    /// Arrival times never precede injection + uncontended latency, and the
    /// traffic counters account for every message.
    #[test]
    fn transfers_respect_physics(
        msgs in prop::collection::vec((0usize..16, 0usize..16, 1u64..5000, 0u64..10_000), 1..100)
    ) {
        let params = SysParams::default();
        let mut net = Network::new(16);
        let mut total_bytes = 0u64;
        let mut now = 0u64;
        for &(src, dst, bytes, gap) in &msgs {
            now += gap;
            let arrival = net.transfer(now, src, dst, bytes, &params);
            let min = now
                + net.mesh().hops(src, dst) * params.hop_latency()
                + params.net_serialize(bytes);
            prop_assert!(arrival >= min, "arrival {arrival} beats physics {min}");
            total_bytes += bytes;
        }
        let stats = net.stats();
        prop_assert_eq!(stats.messages, msgs.len() as u64);
        prop_assert_eq!(stats.bytes, total_bytes);
    }

    /// Back-to-back messages on the same path strictly serialize.
    #[test]
    fn same_path_messages_serialize(bytes in 1u64..4096, count in 2usize..10) {
        let params = SysParams::default();
        let mut net = Network::new(16);
        let mut last = 0;
        for i in 0..count {
            let arrival = net.transfer(0, 0, 15, bytes, &params);
            if i > 0 {
                prop_assert!(arrival >= last + params.net_serialize(bytes));
            }
            last = arrival;
        }
    }
}
