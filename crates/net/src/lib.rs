//! # ncp2-net — wormhole-routed mesh network model
//!
//! The paper simulates "a mesh network router (using wormhole routing)" with
//! an 8-bit bidirectional path, 4-cycle switch latency, 2-cycle wire latency
//! and full contention modeling. This crate provides:
//!
//! * [`Mesh`] — near-square 2-D topology with dimension-order (XY) routing;
//! * [`Network`] — per-directed-link reservation implementing a wormhole
//!   approximation: a message claims every link of its path from the moment
//!   its head can advance until its tail drains, so messages on overlapping
//!   paths serialize (head-of-line blocking included);
//! * traffic statistics used by the experiment harness to diagnose the
//!   prefetch- and automatic-update-induced congestion the paper discusses.
//!
//! Per-message software overheads (the 200-cycle "messaging overhead") are
//! charged by the protocol layer, not here, because who pays them (processor
//! vs. protocol controller vs. nothing for AURC's single-cycle updates) is a
//! protocol property.
//!
//! ```
//! use ncp2_sim::SysParams;
//! use ncp2_net::Network;
//!
//! let p = SysParams::default();
//! let mut net = Network::new(p.nprocs);
//! let arrival = net.transfer(0, 0, 15, 64, &p); // corner to corner, 64 B
//! // 6 hops * (4+2) cycles head latency + 64 B * 2 cycles serialization.
//! assert_eq!(arrival, 36 + 128);
//! ```

pub mod router;
pub mod topology;

pub use router::{Network, TrafficStats, Transfer};
pub use topology::Mesh;
