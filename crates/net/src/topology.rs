//! Near-square 2-D mesh topology with dimension-order routing.

/// A 2-D mesh of `width × height` nodes, numbered row-major.
///
/// For `n` nodes the constructor picks the most nearly square `width ×
/// height = n` factorization (16 → 4×4, 8 → 4×2, 2 → 2×1), matching the
/// paper's 16-node mesh.
///
/// ```
/// use ncp2_net::Mesh;
/// let m = Mesh::new(16);
/// assert_eq!((m.width(), m.height()), (4, 4));
/// assert_eq!(m.hops(0, 15), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
}

/// A directed link between two adjacent mesh nodes, identified by index into
/// the network's reservation table.
pub type LinkId = usize;

impl Mesh {
    /// Builds the most nearly square mesh holding exactly `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "mesh needs at least one node");
        let mut best = (n, 1);
        let mut w = 1;
        while w * w <= n {
            if n.is_multiple_of(w) {
                best = (n / w, w);
            }
            w += 1;
        }
        Mesh {
            width: best.0,
            height: best.1,
        }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// `(x, y)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// Node id at `(x, y)`.
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height, "coords out of range");
        y * self.width + x
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Number of directed links in the mesh (each undirected edge counts
    /// twice; the paper's paths are bidirectional).
    pub fn link_count(&self) -> usize {
        let horiz = (self.width - 1) * self.height;
        let vert = self.width * (self.height - 1);
        2 * (horiz + vert)
    }

    /// Directed link id from `from` to the adjacent node `to`.
    ///
    /// Layout: all east links, then west, then south (increasing y), then
    /// north.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are not adjacent.
    pub fn link_id(&self, from: usize, to: usize) -> LinkId {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let horiz = (self.width - 1) * self.height;
        let vert = self.width * (self.height - 1);
        if fy == ty && tx == fx + 1 {
            fy * (self.width - 1) + fx // east
        } else if fy == ty && fx == tx + 1 {
            horiz + fy * (self.width - 1) + tx // west
        } else if fx == tx && ty == fy + 1 {
            2 * horiz + fy * self.width + fx // south
        } else if fx == tx && fy == ty + 1 {
            2 * horiz + vert + ty * self.width + fx // north
        } else {
            // invariant: routes are built hop by hop from neighbors()
            panic!("nodes {from} and {to} are not adjacent");
        }
    }

    /// The dimension-order (X then Y) route from `src` to `dst`, one
    /// directed link id per hop, computed on the fly with no allocation.
    /// Yields nothing when `src == dst`. This is the hot-path form: the
    /// router walks every path twice per transfer (reservation lookup, then
    /// booking) and a per-transfer `Vec` would dominate the allocator
    /// profile at 256 nodes.
    pub fn route_iter(&self, src: usize, dst: usize) -> RouteIter<'_> {
        let (x, y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        RouteIter {
            mesh: self,
            x,
            y,
            dx,
            dy,
        }
    }

    /// The dimension-order route as a collected list of link ids. Empty when
    /// `src == dst`. Convenience wrapper over [`Mesh::route_iter`] for tests
    /// and diagnostics; the router itself never materializes paths.
    pub fn route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        let it = self.route_iter(src, dst);
        let mut hops = Vec::with_capacity(it.len());
        hops.extend(it);
        hops
    }
}

/// Allocation-free walk of a dimension-order route (see
/// [`Mesh::route_iter`]).
#[derive(Debug, Clone)]
pub struct RouteIter<'a> {
    mesh: &'a Mesh,
    x: usize,
    y: usize,
    dx: usize,
    dy: usize,
}

impl Iterator for RouteIter<'_> {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        if self.x != self.dx {
            let nx = if self.dx > self.x {
                self.x + 1
            } else {
                self.x - 1
            };
            let id = self.mesh.link_id(
                self.mesh.node_at(self.x, self.y),
                self.mesh.node_at(nx, self.y),
            );
            self.x = nx;
            Some(id)
        } else if self.y != self.dy {
            let ny = if self.dy > self.y {
                self.y + 1
            } else {
                self.y - 1
            };
            let id = self.mesh.link_id(
                self.mesh.node_at(self.x, self.y),
                self.mesh.node_at(self.x, ny),
            );
            self.y = ny;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.x.abs_diff(self.dx) + self.y.abs_diff(self.dy);
        (left, Some(left))
    }
}

impl ExactSizeIterator for RouteIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_factorizations() {
        assert_eq!((Mesh::new(16).width(), Mesh::new(16).height()), (4, 4));
        assert_eq!((Mesh::new(8).width(), Mesh::new(8).height()), (4, 2));
        assert_eq!((Mesh::new(12).width(), Mesh::new(12).height()), (4, 3));
        assert_eq!((Mesh::new(2).width(), Mesh::new(2).height()), (2, 1));
        assert_eq!((Mesh::new(1).width(), Mesh::new(1).height()), (1, 1));
        assert_eq!((Mesh::new(7).width(), Mesh::new(7).height()), (7, 1));
    }

    #[test]
    fn coords_round_trip() {
        let m = Mesh::new(16);
        for n in 0..16 {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn link_ids_are_unique_and_dense() {
        let m = Mesh::new(16);
        let mut seen = vec![false; m.link_count()];
        for y in 0..4 {
            for x in 0..4 {
                let n = m.node_at(x, y);
                let mut neighbors = Vec::new();
                if x + 1 < 4 {
                    neighbors.push(m.node_at(x + 1, y));
                }
                if x > 0 {
                    neighbors.push(m.node_at(x - 1, y));
                }
                if y + 1 < 4 {
                    neighbors.push(m.node_at(x, y + 1));
                }
                if y > 0 {
                    neighbors.push(m.node_at(x, y - 1));
                }
                for nb in neighbors {
                    let id = m.link_id(n, nb);
                    assert!(!seen[id], "duplicate link id {id}");
                    seen[id] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "link id space not dense");
    }

    #[test]
    fn routes_have_manhattan_length() {
        let m = Mesh::new(16);
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(m.route(s, d).len() as u64, m.hops(s, d));
            }
        }
    }

    #[test]
    fn route_is_x_then_y() {
        let m = Mesh::new(16);
        // 0 -> 15: east, east, east, then south, south, south.
        let r = m.route(0, 15);
        assert_eq!(r.len(), 6);
        let e01 = m.link_id(0, 1);
        assert_eq!(r[0], e01);
        let s311 = m.link_id(3, 7);
        assert_eq!(r[3], s311);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn non_adjacent_link_panics() {
        Mesh::new(16).link_id(0, 2);
    }
}
