//! Wormhole transfer timing with per-link contention.

use ncp2_sim::{Cycles, SysParams};

use crate::topology::Mesh;

/// Aggregate traffic counters for congestion diagnosis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages injected.
    pub messages: u64,
    /// Payload bytes injected.
    pub bytes: u64,
    /// Sum over messages of (arrival − injection), cycles.
    pub total_latency: Cycles,
    /// Sum over messages of time spent blocked on busy links, cycles.
    pub total_blocking: Cycles,
}

impl TrafficStats {
    /// Mean end-to-end latency per message, cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Mean cycles a message waited for contended links.
    pub fn mean_blocking(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_blocking as f64 / self.messages as f64
        }
    }
}

/// Timing of one message transfer: when its head entered the network (after
/// any link contention) and when its tail reached the destination interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Head entered the network (`== inject time` when uncontended).
    pub start: Cycles,
    /// Tail drained at the destination's network interface.
    pub arrival: Cycles,
}

/// The interconnect: a [`Mesh`] plus per-directed-link reservations.
///
/// The wormhole approximation: a message's head may enter the network once
/// **all** links on its dimension-order path are free (a wormhole blocked
/// mid-route holds its earlier links, so path-wide acquisition is the
/// right coarse model); it then pipelines at one flit per
/// `net_cycles_per_byte`, arriving `hops × (switch + wire) + serialization`
/// later, and all path links are held until the tail drains.
///
/// ```
/// use ncp2_sim::SysParams;
/// use ncp2_net::Network;
/// let p = SysParams::default();
/// let mut net = Network::new(16);
/// let a1 = net.transfer(0, 0, 3, 32, &p);
/// // A second message over the same links must wait for the first's tail.
/// let a2 = net.transfer(0, 0, 3, 32, &p);
/// assert!(a2 > a1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    link_free: Vec<Cycles>,
    stats: TrafficStats,
    #[cfg(feature = "fault")]
    plan: Option<ncp2_fault::FaultPlan>,
}

impl Network {
    /// Builds the interconnect for `n` nodes.
    pub fn new(n: usize) -> Self {
        let mesh = Mesh::new(n);
        let links = mesh.link_count().max(1);
        Network {
            mesh,
            link_free: vec![0; links],
            stats: TrafficStats::default(),
            #[cfg(feature = "fault")]
            plan: None,
        }
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Attaches a fault plan whose latency spikes and congestion windows
    /// delay subsequent transfers (see [`ncp2_fault::FaultPlan`]).
    #[cfg(feature = "fault")]
    pub fn set_fault_plan(&mut self, plan: ncp2_fault::FaultPlan) {
        self.plan = Some(plan);
    }

    /// Injects a `bytes`-byte message from `src` to `dst` at time `now`;
    /// returns its arrival time at `dst`'s network interface.
    ///
    /// `src == dst` models a loopback NI transfer: serialization only.
    pub fn transfer(
        &mut self,
        now: Cycles,
        src: usize,
        dst: usize,
        bytes: u64,
        params: &SysParams,
    ) -> Cycles {
        self.transfer_timed(now, src, dst, bytes, params).arrival
    }

    /// Like [`transfer`](Network::transfer) but also reports when the head
    /// entered the network, so observers can separate link-contention
    /// blocking from flight time.
    pub fn transfer_timed(
        &mut self,
        now: Cycles,
        src: usize,
        dst: usize,
        bytes: u64,
        params: &SysParams,
    ) -> Transfer {
        let serialization = params.net_serialize(bytes);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        if src == dst {
            let arrival = now + serialization;
            self.stats.total_latency += arrival - now;
            return Transfer {
                start: now,
                arrival,
            };
        }
        // Walk the path twice with the allocation-free iterator (reserve
        // lookup, then booking) instead of materializing it; transfers are
        // the single hottest operation at 256 nodes.
        let link_free = &self.link_free;
        let ready = self
            .mesh
            .route_iter(src, dst)
            .map(|l| link_free[l])
            .max()
            .unwrap_or(0);
        let start = now.max(ready);
        let head = self.mesh.hops(src, dst) * params.hop_latency();
        let arrival = start + head + serialization;
        for l in self.mesh.route_iter(src, dst) {
            self.link_free[l] = arrival;
        }
        // A fault-plan latency spike delays *this* message's delivery but
        // does not extend its link occupancy: the links were booked to the
        // undelayed arrival above, so a later frame on the same link can
        // overtake a spiked one — genuine reordering, which the transport's
        // receive-side resequencing buffer must absorb.
        #[cfg(feature = "fault")]
        let arrival = match &self.plan {
            Some(plan) => arrival + plan.extra_latency(src, dst, now),
            None => arrival,
        };
        self.stats.total_blocking += start - now;
        self.stats.total_latency += arrival - now;
        Transfer { start, arrival }
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SysParams {
        SysParams::default()
    }

    #[test]
    fn uncontended_latency_formula() {
        let mut net = Network::new(16);
        // 0 -> 5 is 2 hops in a 4x4 mesh.
        let arrival = net.transfer(100, 0, 5, 16, &p());
        assert_eq!(arrival, 100 + 2 * 6 + 32);
        assert_eq!(net.stats().total_blocking, 0);
    }

    #[test]
    fn overlapping_paths_serialize() {
        let mut net = Network::new(16);
        let a1 = net.transfer(0, 0, 3, 4096, &p());
        // 1 -> 2 uses a link inside 0 -> 3's path.
        let a2 = net.transfer(0, 1, 2, 8, &p());
        assert!(
            a2 > a1,
            "second message should block behind the page transfer"
        );
        assert!(net.stats().total_blocking > 0);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let mut net = Network::new(16);
        let a1 = net.transfer(0, 0, 1, 64, &p());
        let a2 = net.transfer(0, 14, 15, 64, &p());
        assert_eq!(a1, a2);
        assert_eq!(net.stats().total_blocking, 0);
    }

    #[test]
    fn bandwidth_sweep_scales_serialization() {
        let params = p().with_net_bandwidth_mbps(200.0); // 0.5 cycles/byte
        let mut net = Network::new(16);
        let arrival = net.transfer(0, 0, 1, 1000, &params);
        assert_eq!(arrival, 6 + 500);
    }

    #[test]
    fn loopback_only_serializes() {
        let mut net = Network::new(16);
        assert_eq!(net.transfer(50, 7, 7, 10, &p()), 50 + 20);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Network::new(4);
        net.transfer(0, 0, 1, 100, &p());
        net.transfer(0, 1, 0, 50, &p());
        let s = net.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert!(s.mean_latency() > 0.0);
    }

    #[test]
    fn transfer_timed_reports_contention_start() {
        let mut net = Network::new(16);
        let first = net.transfer_timed(0, 0, 3, 4096, &p());
        assert_eq!(first.start, 0);
        let second = net.transfer_timed(0, 1, 2, 8, &p());
        assert_eq!(second.start, first.arrival);
        assert!(second.arrival > second.start);
    }

    #[test]
    fn single_node_network_is_usable() {
        let mut net = Network::new(1);
        assert_eq!(net.transfer(0, 0, 0, 4, &p()), 8);
    }
}

#[cfg(all(test, feature = "fault"))]
mod fault_tests {
    use super::*;
    use ncp2_fault::{FaultPlan, LinkWindow};

    #[test]
    fn spike_delays_delivery_without_extending_link_occupancy() {
        let mut plain = Network::new(16);
        let base = plain.transfer(0, 0, 1, 16, &SysParams::default());

        let mut net = Network::new(16);
        let mut plan = FaultPlan::none();
        plan.spikes.push(LinkWindow {
            src: 0,
            dst: 1,
            start: 0,
            end: 10,
            extra: 500,
        });
        net.set_fault_plan(plan);
        let spiked = net.transfer(0, 0, 1, 16, &SysParams::default());
        assert_eq!(spiked, base + 500);
        // The second frame departs after the window; it reuses the link as
        // soon as the *undelayed* tail drained, so it overtakes the first.
        let second = net.transfer(20, 0, 1, 16, &SysParams::default());
        assert!(
            second < spiked,
            "later frame should overtake the spiked one"
        );
    }
}
