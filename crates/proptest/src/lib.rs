//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the proptest API the workspace's property tests use, backed
//! by a small deterministic PRNG instead of proptest's adaptive shrinking
//! runner:
//!
//! * [`Strategy`] implemented for integer ranges, [`any`], and tuples;
//! * [`collection::vec`], [`collection::btree_map`], [`collection::btree_set`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Cases are generated from a seed derived from the test's module path and
//! name, so failures reproduce exactly across runs. There is no shrinking:
//! a failing case reports its case index and seed instead.

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility with real proptest; this runner
    /// never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic splitmix64-based generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Multiply-shift bounding; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Derives the per-test base seed from its fully qualified name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Prints the failing case on panic so runs are reproducible by eye.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms the guard for one case of `name`.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// The case passed; do not report on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest(shim): {} failed at case #{} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

/// A value generator. The shim generates directly (no shrink trees).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T` (`any::<u32>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values in [0, 1): enough for test inputs without NaN noise.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection sizes: a fixed length or a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<S::Value>` of a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `btree_map(key_strategy, value_strategy, size)`. Duplicate keys
    /// collapse, so the map may be smaller than the drawn size (matching
    /// proptest's semantics closely enough for these tests).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(strategy, size)`; duplicates collapse as with maps.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` facade module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::*;
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Defines deterministic property tests.
///
/// Supports the common proptest surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr };
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::TestRng::new(__base ^ (__case as u64).wrapping_mul(0xA076_1D64_78BD_642F));
                let __guard = $crate::CaseGuard::new(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
                __guard.disarm();
            }
        }
    )+};
}

/// `assert!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, y in 0usize..3) {
            prop_assert!((5..17).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn collections_obey_sizes(
            v in prop::collection::vec(any::<u16>(), 4),
            w in prop::collection::vec(0u8..5, 1..4),
            s in prop::collection::btree_set(0u32..1000, 0..10),
            m in prop::collection::btree_map(0u8..4, any::<u64>(), 0..20)
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..4).contains(&w.len()));
            prop_assert!(s.len() < 10);
            prop_assert!(m.len() <= 4, "at most 4 distinct keys");
        }

        #[test]
        fn tuples_compose(p in (0u64..10, 0u64..10, any::<bool>())) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
