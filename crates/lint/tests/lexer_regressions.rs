//! Regression fixtures for the comment/string handling the old line
//! scanner got wrong. Its `strip_comment` only cut `//` tails and knew
//! nothing of string literals or block comments, so rule patterns inside
//! either produced false positives — and a `#[cfg(test)]` mentioned in a
//! string truncated the whole scan, producing false negatives. Each case
//! here drives a full `lint_source` pass, pinning the behavior end to end.

use ncp2_lint::lint_source;

fn finding_count(rel: &str, src: &str) -> usize {
    lint_source(rel, src).findings.len()
}

#[test]
fn rule_patterns_inside_string_literals_do_not_fire() {
    // `.unwrap()` and `panic!` appear only as message text.
    let src = r###"
fn describe() -> &'static str {
    "never call .unwrap() or panic!(..) in handlers"
}

fn raw() -> &'static str {
    r#"todo!() and unimplemented!() are banned; so is x.unwrap()"#
}
"###;
    assert_eq!(finding_count("crates/core/src/sync.rs", src), 0);
}

#[test]
fn rule_patterns_inside_block_comments_do_not_fire() {
    let src = r"
/* A handler must never x.unwrap() — route the error.
   /* nested: even panic!() in here is prose, */
   and this tail is still comment. */
fn route(&self) -> Option<usize> {
    self.owner
}
";
    assert_eq!(finding_count("crates/core/src/sync.rs", src), 0);
}

#[test]
fn block_comment_tail_on_code_line_still_lints_the_code() {
    // The code after `*/` is real and must still fire.
    let src = "
fn f(x: Option<u32>) -> u32 {
    /* prose */ x.unwrap()
}
";
    let report = lint_source("crates/core/src/sync.rs", src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "forbidden-panic");
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn string_containing_comment_opener_does_not_swallow_code() {
    // `"/*"` must not start a comment: the unwrap after it is live code.
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    let _marker = "/*";
    x.unwrap()
}
"#;
    let report = lint_source("crates/core/src/sync.rs", src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "forbidden-panic");
}

#[test]
fn cfg_test_inside_a_string_does_not_end_the_scan() {
    // The old scanner truncated at the first textual `#[cfg(test)]`; the
    // lexer only honors the real attribute, so the unwrap below the string
    // still fires.
    let src = r##"
fn banner() -> &'static str {
    "#[cfg(test)]"
}

fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"##;
    let report = lint_source("crates/core/src/sync.rs", src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "forbidden-panic");
    assert_eq!(report.findings[0].line, 7);
}

#[test]
fn char_literals_and_lifetimes_do_not_derail_the_lexer() {
    let src = r"
fn classify<'a>(c: char, s: &'a str) -> &'a str {
    if c == '\'' || c == '{' {
        s
    } else {
        s
    }
}
";
    assert_eq!(finding_count("crates/core/src/sync.rs", src), 0);
}

#[test]
fn suppressions_inside_doc_comments_are_prose() {
    // Doc text may *describe* the suppression syntax without emitting a
    // (necessarily unused) directive.
    let src = r"
/// Silence a rule with `// lint: allow(forbidden-panic) -- reason`.
fn documented(&self) -> Option<usize> {
    self.owner
}
";
    assert_eq!(finding_count("crates/core/src/sync.rs", src), 0);
}

#[test]
fn diagnostics_carry_accurate_line_and_col() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let report = lint_source("crates/core/src/sync.rs", src);
    assert_eq!(report.findings.len(), 1);
    let d = &report.findings[0];
    assert_eq!((d.line, d.col), (2, 7), "diagnostic must point at `unwrap`");
    assert_eq!(d.snippet, "x.unwrap()");
}
