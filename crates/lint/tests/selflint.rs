//! The analyzer lints the workspace that ships it — including itself.
//! Pinned here: zero unsuppressed findings, every suppression justified,
//! and a byte-deterministic JSON report.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("crates").is_dir())
        .expect("workspace root above crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let report = ncp2_lint::lint_workspace(&workspace_root()).expect("scan");
    assert!(
        report.findings.is_empty(),
        "workspace must lint to zero unsuppressed findings:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}

#[test]
fn every_suppression_is_justified() {
    let report = ncp2_lint::lint_workspace(&workspace_root()).expect("scan");
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression at {}:{} has an empty reason",
            s.file,
            s.line
        );
    }
}

#[test]
fn json_report_is_byte_deterministic() {
    let root = workspace_root();
    let a = ncp2_lint::lint_workspace(&root).expect("scan").to_json();
    let b = ncp2_lint::lint_workspace(&root).expect("scan").to_json();
    assert_eq!(
        a, b,
        "two scans of the same tree must serialize identically"
    );
}

#[test]
fn committed_baseline_matches_current_suppressions() {
    let root = workspace_root();
    let report = ncp2_lint::lint_workspace(&root).expect("scan");
    let current = ncp2_lint::baseline::Baseline::from_report(&report);
    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json"))
        .expect("LINT_BASELINE.json committed at the workspace root");
    let pinned = ncp2_lint::baseline::Baseline::parse(&text).expect("parseable baseline");
    assert!(
        pinned.regressions(&current).is_empty(),
        "suppression debt grew past the committed baseline"
    );
}
