//! Per-rule fixtures: every registered rule has a firing fixture (the
//! hazard, caught) and a clean twin (the idiomatic fix, silent). The pair
//! pins both directions — a rule that stops firing and a rule that starts
//! overreaching both break here.

use ncp2_lint::lint_source;

/// Asserts the fixture trips exactly `rule` (possibly several times).
fn fires(rel: &str, src: &str, rule: &str) {
    let report = lint_source(rel, src);
    assert!(
        !report.findings.is_empty(),
        "{rule}: firing fixture produced no findings"
    );
    for d in &report.findings {
        assert_eq!(
            d.rule, rule,
            "{rule}: firing fixture tripped unrelated rule {} at {}:{}",
            d.rule, d.file, d.line
        );
    }
}

/// Asserts the fixture is entirely silent (no findings, no suppressions).
fn clean(rel: &str, src: &str, rule: &str) {
    let report = lint_source(rel, src);
    assert!(
        report.findings.is_empty(),
        "{rule}: clean twin tripped {:?}",
        report
            .findings
            .iter()
            .map(|d| format!("{} at {}:{}", d.rule, d.file, d.line))
            .collect::<Vec<_>>()
    );
}

#[test]
fn engine_bypass() {
    let rel = "crates/bench/src/bin/sweep.rs";
    fires(
        rel,
        r#"
fn main() {
    let sim = Simulation::new(config());
    run_app(sim);
}
"#,
        "engine-bypass",
    );
    clean(
        rel,
        r#"
fn main() {
    let grid = Grid::new(config());
    let results = Engine::default().execute(grid);
    report(results);
}
"#,
        "engine-bypass",
    );
}

#[test]
fn feature_hook_hygiene() {
    let rel = "crates/core/src/system.rs";
    fires(
        rel,
        r#"
impl Simulation {
    fn tick(&mut self) {
        if let Some(o) = self.obs.as_mut() {
            o.record();
        }
    }
}
"#,
        "feature-hook-hygiene",
    );
    // Gated consult plus the paired no-op stub: both polarities count.
    clean(
        rel,
        r#"
impl Simulation {
    #[cfg(feature = "obs")]
    fn tick(&mut self) {
        if let Some(o) = self.obs.as_mut() {
            o.record();
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn obs_span(&mut self) {}
}
"#,
        "feature-hook-hygiene",
    );
    // The `prof` feature is policed the same way in the profiling crate: an
    // ungated `fn prof_*` accessor fires…
    let prof_rel = "crates/prof/src/lib.rs";
    fires(
        prof_rel,
        r#"
pub fn prof_thread_counts() -> (u64, u64) {
    counting::thread_counts()
}
"#,
        "feature-hook-hygiene",
    );
    // …while the gated pair (real reader + zero stub) is clean.
    clean(
        prof_rel,
        r#"
#[cfg(feature = "prof")]
pub fn prof_thread_counts() -> (u64, u64) {
    counting::thread_counts()
}

#[cfg(not(feature = "prof"))]
#[inline(always)]
pub fn prof_thread_counts() -> (u64, u64) {
    (0, 0)
}
"#,
        "feature-hook-hygiene",
    );
}

#[test]
fn forbidden_panic() {
    let rel = "crates/core/src/sync.rs";
    fires(
        rel,
        r#"
fn holder(&self, lock: u32) -> usize {
    self.owner.get(&lock).copied().unwrap()
}
"#,
        "forbidden-panic",
    );
    clean(
        rel,
        r#"
fn holder(&self, lock: u32) -> Option<usize> {
    self.owner.get(&lock).copied()
}
"#,
        "forbidden-panic",
    );
}

#[test]
fn linear_scan_in_hot_path() {
    let rel = "crates/sim/src/queue.rs";
    fires(
        rel,
        r#"
fn cancel(&mut self, seq: u64) {
    self.pending.retain(|e| e.seq != seq);
}
"#,
        "linear-scan-in-hot-path",
    );
    fires(
        rel,
        r#"
fn take_first(&mut self) -> Event {
    self.pending.remove(0)
}
"#,
        "linear-scan-in-hot-path",
    );
    // A `// linear:` comment bounding the scan silences the rule, and
    // `swap_remove` is O(1) so it never fires.
    clean(
        rel,
        r#"
fn cancel(&mut self, bucket: usize, slot: usize) -> Event {
    // linear: bucket scan is bounded by the calendar width, not the queue.
    self.buckets[bucket].retain(|e| e.live);
    self.buckets[bucket].swap_remove(slot)
}
"#,
        "linear-scan-in-hot-path",
    );
    // Out of scope: the same scan in a protocol crate belongs to other rules.
    clean(
        "crates/core/src/interval.rs",
        r#"
fn drop_covered(&mut self) {
    self.anns.remove(0);
}
"#,
        "linear-scan-in-hot-path",
    );
}

#[test]
fn malformed_suppression() {
    let rel = "crates/core/src/sync.rs";
    // No ` -- reason`: the directive itself becomes the finding.
    fires(
        rel,
        r#"
fn f(x: Option<u32>) -> Option<u32> {
    x // lint: allow(forbidden-panic)
}
"#,
        "malformed-suppression",
    );
    // Unknown rule IDs are malformed too, not silently inert.
    fires(
        rel,
        r#"
fn f(x: Option<u32>) -> Option<u32> {
    x // lint: allow(no-such-rule) -- typo'd rule names must not pass
}
"#,
        "malformed-suppression",
    );
    // Well-formed suppression with a reason: finding moves to the ledger.
    let report = lint_source(
        rel,
        r#"
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(forbidden-panic) -- fixture twin exercising the ledger
}
"#,
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "forbidden-panic");
    assert!(!report.suppressed[0].reason.is_empty());
}

#[test]
fn nondeterministic_iteration() {
    let rel = "crates/stats/src/tally.rs";
    fires(
        rel,
        r#"
use std::collections::HashMap;

struct Tally {
    counts: HashMap<u32, u64>,
}

impl Tally {
    fn dump(&self) -> Vec<u32> {
        self.counts.keys().copied().collect()
    }
}
"#,
        "nondeterministic-iteration",
    );
    clean(
        rel,
        r#"
use std::collections::BTreeMap;

struct Tally {
    counts: BTreeMap<u32, u64>,
}

impl Tally {
    fn dump(&self) -> Vec<u32> {
        self.counts.keys().copied().collect()
    }
}
"#,
        "nondeterministic-iteration",
    );
}

#[test]
fn nondeterministic_iteration_for_loop_and_point_lookups() {
    let rel = "crates/stats/src/tally.rs";
    fires(
        rel,
        r#"
use std::collections::HashSet;

fn sum(pages: HashSet<u64>) -> u64 {
    let mut acc = 0;
    for p in &pages {
        acc ^= p << 1;
    }
    acc
}
"#,
        "nondeterministic-iteration",
    );
    // Point lookups are order-free and stay silent.
    clean(
        rel,
        r#"
use std::collections::HashMap;

struct Cache {
    map: HashMap<u64, u64>,
}

impl Cache {
    fn lookup(&mut self, k: u64) -> u64 {
        *self.map.entry(k).or_insert(0)
    }
    fn probe(&self, k: u64) -> bool {
        self.map.contains_key(&k)
    }
}
"#,
        "nondeterministic-iteration",
    );
}

#[test]
fn truncating_cycle_cast() {
    let rel = "crates/sim/src/clock.rs";
    fires(
        rel,
        r#"
fn compress(cycles: u64) -> u32 {
    cycles as u32
}
"#,
        "truncating-cycle-cast",
    );
    // A sub-64-bit cast away from cycle quantities is fine.
    clean(
        rel,
        r#"
fn tag(node: usize) -> u16 {
    node as u16
}

fn keep(cycles: u64) -> u64 {
    cycles
}
"#,
        "truncating-cycle-cast",
    );
}

#[test]
fn unanchored_edge() {
    let rel = "crates/core/src/sync.rs";
    fires(
        rel,
        r#"
fn grant(&mut self, src: usize, dst: usize, t: u64) {
    self.obs_edge(EdgeKind::LockGrant, src, dst, t, 0);
}
"#,
        "unanchored-edge",
    );
    clean(
        rel,
        r#"
fn grant(&mut self, src: usize, dst: usize, t: u64) {
    self.obs_edge(EdgeKind::LockGrant, src, dst, t, self.obs_last_span(src));
}
"#,
        "unanchored-edge",
    );
}

#[test]
fn unbounded_retry() {
    let rel = "crates/net/src/router.rs";
    fires(
        rel,
        r#"
fn backoff(&mut self, frame: &Frame) -> u64 {
    self.retransmit_timeout << frame.attempt
}
"#,
        "unbounded-retry",
    );
    clean(
        rel,
        r#"
fn backoff(&mut self, frame: &Frame) -> u64 {
    let shift = frame.attempt.min(MAX_BACKOFF_SHIFT);
    self.retransmit_timeout << shift
}
"#,
        "unbounded-retry",
    );
}

#[test]
fn unchecked_index() {
    let rel = "crates/core/src/diff.rs";
    fires(
        rel,
        r#"
fn word(&self, i: usize) -> u8 {
    self.data[i]
}
"#,
        "unchecked-index",
    );
    clean(
        rel,
        r#"
fn word(&self, i: usize) -> u8 {
    // invariant: i comes from a same-sized dirty vector, checked by new().
    self.data[i]
}
"#,
        "unchecked-index",
    );
}

#[test]
fn undocumented_panic() {
    let rel = "crates/core/src/treadmarks.rs";
    fires(
        rel,
        r#"
fn twin(&mut self, page: u64) -> &[u8] {
    self.twins.get(&page).expect("twin present")
}
"#,
        "undocumented-panic",
    );
    clean(
        rel,
        r#"
fn twin(&mut self, page: u64) -> &[u8] {
    // invariant: a twin is created on the first write fault, before any
    // diff request can name the page.
    self.twins.get(&page).expect("twin present")
}
"#,
        "undocumented-panic",
    );
}

#[test]
fn unused_suppression() {
    let rel = "crates/core/src/sync.rs";
    fires(
        rel,
        r#"
fn holder(&self, lock: u32) -> Option<usize> {
    // lint: allow(forbidden-panic) -- stale: the unwrap below was removed
    self.owner.get(&lock).copied()
}
"#,
        "unused-suppression",
    );
    // The twin for "suppression actually used" lives in
    // `malformed_suppression` above; a file with no directives is trivially
    // clean for this rule.
    clean(
        rel,
        r#"
fn holder(&self, lock: u32) -> Option<usize> {
    self.owner.get(&lock).copied()
}
"#,
        "unused-suppression",
    );
}

#[test]
fn wall_clock_in_sim() {
    let rel = "crates/sim/src/clock.rs";
    fires(
        rel,
        r#"
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
"#,
        "wall-clock-in-sim",
    );
    clean(
        rel,
        r#"
fn stamp(now: u64) -> u64 {
    now
}
"#,
        "wall-clock-in-sim",
    );
}

#[test]
fn unjustified_saturating_cycle_arith() {
    let rel = "crates/mem/src/fifo.rs";
    fires(
        rel,
        r#"
fn stall(free_at: u64, now: u64) -> u64 {
    free_at.saturating_sub(now)
}
"#,
        "unjustified-saturating-cycle-arith",
    );
    clean(
        rel,
        r#"
fn stall(free_at: u64, now: u64) -> u64 {
    // overflow: a drain finished in the past stalls for zero cycles.
    free_at.saturating_sub(now)
}
"#,
        "unjustified-saturating-cycle-arith",
    );
}

#[test]
fn test_region_is_exempt() {
    // Findings inside the trailing `#[cfg(test)]` module never surface —
    // unwraps in tests are idiomatic.
    let rel = "crates/core/src/sync.rs";
    clean(
        rel,
        r#"
fn holder(&self, lock: u32) -> Option<usize> {
    self.owner.get(&lock).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn grabs() {
        holder(7).unwrap();
        panic!("even this is fine in tests");
    }
}
"#,
        "forbidden-panic",
    );
}

#[test]
fn window_boundary_div() {
    let rel = "crates/obs/src/timeseries.rs";
    fires(
        rel,
        r#"
fn rate(count: u64, window_width: u64) -> u64 {
    count / window_width
}
"#,
        "window-boundary-div",
    );
    // A `// window:` comment explaining the boundary handling is the fix.
    clean(
        rel,
        r#"
fn rate(count: u64, window_width: u64) -> u64 {
    // window: charges on a boundary belong to the later window by the
    // half-open [start, end) convention; flooring implements exactly that.
    count / window_width
}
"#,
        "window-boundary-div",
    );
    // Outside the window-math dirs the rule does not apply.
    clean(
        "crates/core/src/system.rs",
        r#"
fn rate(count: u64, window_width: u64) -> u64 {
    count / window_width
}
"#,
        "window-boundary-div",
    );
}

#[test]
fn open_loop_clock() {
    let rel = "crates/svc/src/arrival.rs";
    fires(
        rel,
        r#"
fn advance(clock: u64, gap: u64) -> u64 {
    clock + gap
}
"#,
        "open-loop-clock",
    );
    // Citing the simulated-cycle type on the line is the fix...
    clean(
        rel,
        r#"
fn advance(clock: Cycles, gap: Cycles) -> Cycles {
    let next: Cycles = clock + gap;
    next
}
"#,
        "open-loop-clock",
    );
    // ...or a `// clock:` comment saying why the units are right.
    clean(
        rel,
        r#"
fn advance(&mut self) {
    // clock: cumulative sum of simulated-cycle gaps (both fields Cycles).
    self.clock += self.gap;
}
"#,
        "open-loop-clock",
    );
    // Comparisons are unit-safe; only arithmetic is policed.
    clean(
        rel,
        r#"
fn behind(clock: u64, deadline: u64) -> bool {
    clock >= deadline
}
"#,
        "open-loop-clock",
    );
    // Outside the service crate the rule does not apply.
    clean(
        "crates/core/src/system.rs",
        r#"
fn advance(clock: u64, gap: u64) -> u64 {
    clock + gap
}
"#,
        "open-loop-clock",
    );
}

#[test]
fn every_registered_rule_has_a_fixture_here() {
    // Keep this file honest: a new rule must add its fixture pair.
    let covered = [
        "engine-bypass",
        "feature-hook-hygiene",
        "forbidden-panic",
        "linear-scan-in-hot-path",
        "malformed-suppression",
        "nondeterministic-iteration",
        "open-loop-clock",
        "truncating-cycle-cast",
        "unanchored-edge",
        "unbounded-retry",
        "unchecked-index",
        "undocumented-panic",
        "unjustified-saturating-cycle-arith",
        "unused-suppression",
        "wall-clock-in-sim",
        "window-boundary-div",
    ];
    let ids = ncp2_lint::rules::rule_ids();
    assert_eq!(ids.len(), covered.len(), "rule registry changed: {ids:?}");
    for id in ids {
        assert!(covered.contains(&id), "rule {id} has no fixture pair");
    }
}
