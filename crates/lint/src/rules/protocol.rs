//! Protocol-hazard rules: engine bypass, unanchored dependency edges,
//! unbounded retries, and feature-gate hygiene on the zero-cost hooks.

use crate::config::{
    in_dirs, EDGE_EMISSION_FILES, ENGINE_ONLY_DIR, HOOK_FIELDS, HOOK_FN_PREFIXES,
    HOOK_HYGIENE_DIRS, RETRY_CAP_WINDOW, RETRY_DIRS,
};
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, Rule};
use crate::lexer::TokKind;

/// `engine-bypass`: bench binaries must route every simulation through the
/// `Grid`/`Engine` scheduler — direct entry points lose parallelism,
/// caching and deterministic result ordering.
pub struct EngineBypass;

impl Rule for EngineBypass {
    fn id(&self) -> &'static str {
        "engine-bypass"
    }
    fn summary(&self) -> &'static str {
        "bench binaries must use Grid/Engine, not direct simulation entry points"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, &[ENGINE_ONLY_DIR])
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            for f in ["run_app", "run_app_with", "sequential_baseline"] {
                if code[i].is_ident(f) && code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    out.push(ctx.diag(
                        &code[i],
                        self.id(),
                        format!("direct `{f}(…)` in a bench binary (use Grid/Engine)"),
                    ));
                }
            }
            if code[i].is_ident("Simulation")
                && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 3).is_some_and(|t| t.is_ident("new"))
                && code.get(i + 4).is_some_and(|t| t.is_punct('('))
            {
                out.push(ctx.diag(
                    &code[i],
                    self.id(),
                    "direct `Simulation::new(…)` in a bench binary (use Grid/Engine)".into(),
                ));
            }
        }
    }
}

/// `unanchored-edge`: every `obs_edge(…)` emission must pass an anchor
/// obtained from `obs_last_span(…)` somewhere inside the call — the
/// execution-graph builder rejects edges dangling off activity the span
/// log never recorded. Paren-matched over tokens, so the old fixed
/// line-window heuristic (and its long-call false negatives) is gone.
pub struct UnanchoredEdge;

impl Rule for UnanchoredEdge {
    fn id(&self) -> &'static str {
        "unanchored-edge"
    }
    fn summary(&self) -> &'static str {
        "`obs_edge(…)` calls must anchor via `obs_last_span(…)` in the call"
    }
    fn applies(&self, rel: &str) -> bool {
        EDGE_EMISSION_FILES.contains(&rel)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            if !code[i].is_ident("obs_edge") {
                continue;
            }
            // Skip the recorder definitions themselves.
            if i > 0 && code[i - 1].is_ident("fn") {
                continue;
            }
            if !code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let mut depth = 0i64;
            let mut end = code.len() - 1;
            for (j, t) in code.iter().enumerate().skip(i + 1) {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
            }
            let anchored = code[i + 1..=end]
                .iter()
                .any(|t| t.is_ident("obs_last_span"));
            if !anchored {
                out.push(ctx.diag(
                    &code[i],
                    self.id(),
                    "`obs_edge(…)` without an `obs_last_span(…)` anchor in the call".into(),
                ));
            }
        }
    }
}

/// `unbounded-retry`: every retransmission/backoff site — a
/// `retransmit_timeout` shifted for exponential backoff, or an `attempt`
/// counter being advanced — must reference a compile-time `MAX_`-prefixed
/// cap constant within [`RETRY_CAP_WINDOW`] lines. An uncapped retry loop
/// under a fault plan that keeps dropping frames is a livelock; an
/// uncapped shifted timeout is a cycle-counter overflow.
pub struct UnboundedRetry;

impl Rule for UnboundedRetry {
    fn id(&self) -> &'static str {
        "unbounded-retry"
    }
    fn summary(&self) -> &'static str {
        "retry/backoff sites must cite a `MAX_` cap constant nearby"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, RETRY_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = &code[i];
            let backoff_shift = t.is_ident("retransmit_timeout")
                && ctx
                    .code_on_line(t.line)
                    .windows(2)
                    .any(|w| w[0].is_punct('<') && w[1].is_punct('<') && w[0].line == w[1].line);
            let attempt_advance = t.is_ident("attempt")
                && code.get(i + 1).is_some_and(|n| n.is_punct('+'))
                && code
                    .get(i + 2)
                    .is_some_and(|n| n.is_punct('=') || n.kind == TokKind::Num);
            if !(backoff_shift || attempt_advance) {
                continue;
            }
            let lo = t.line.saturating_sub(RETRY_CAP_WINDOW);
            let hi = t.line + RETRY_CAP_WINDOW;
            let capped = ctx.code.iter().any(|c| {
                c.line >= lo
                    && c.line <= hi
                    && c.kind == TokKind::Ident
                    && c.text.starts_with("MAX_")
            });
            if !capped {
                out.push(ctx.diag(
                    t,
                    self.id(),
                    format!(
                        "retry/backoff site without a `MAX_` cap constant within \
                         {RETRY_CAP_WINDOW} lines"
                    ),
                ));
            }
        }
    }
}

/// `feature-hook-hygiene`: consulting a feature-carrying hook field
/// (`self.obs`, `self.observer`, `self.fault`, …) outside a `#[cfg]`
/// region that mentions the matching feature breaks the zero-cost
/// guarantee — the hook would compile (and cost cycles) in builds that
/// promised it away, or fail to compile under a feature combination CI
/// never builds. Hook definitions with a feature-owned name prefix
/// (`fn obs_*`, `fn prof_*` — see `HOOK_FN_PREFIXES`) must likewise be
/// gated (either polarity: the real implementation or its inlined no-op
/// stub).
pub struct FeatureHookHygiene;

impl Rule for FeatureHookHygiene {
    fn id(&self) -> &'static str {
        "feature-hook-hygiene"
    }
    fn summary(&self) -> &'static str {
        "hook-field consults and `fn obs_*`/`fn prof_*` definitions must sit behind their cfg gate"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, HOOK_HYGIENE_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            // `self.<hook-field>` consults.
            if code[i].is_ident("self") && code.get(i + 1).is_some_and(|t| t.is_punct('.')) {
                if let Some(field) = code.get(i + 2) {
                    if let Some(&(_, feature)) = HOOK_FIELDS
                        .iter()
                        .find(|(f, _)| field.kind == TokKind::Ident && field.text == *f)
                    {
                        // `plan` is a net-router field; in core it is an
                        // ordinary local. Scope it to the net crate.
                        if field.text == "plan" && !ctx.rel.starts_with("crates/net/") {
                            continue;
                        }
                        if !ctx.gated_for(field.line, feature) {
                            out.push(ctx.diag(
                                field,
                                self.id(),
                                format!(
                                    "`self.{}` consulted outside a `#[cfg(feature = \
                                     \"{feature}\")]` region",
                                    field.text
                                ),
                            ));
                        }
                    }
                }
            }
            // `fn <feature-prefix>*` definitions.
            if code[i].is_ident("fn") {
                if let Some(name) = code.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        for &(prefix, feature) in HOOK_FN_PREFIXES {
                            if name.text.starts_with(prefix) && !ctx.gated_for(name.line, feature) {
                                out.push(ctx.diag(
                                    name,
                                    self.id(),
                                    format!(
                                        "`fn {}` defined outside a `#[cfg(feature = \
                                         \"{feature}\")]` region (gate the hook and its \
                                         no-op stub)",
                                        name.text
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}
