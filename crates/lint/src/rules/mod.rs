//! The rule registry.
//!
//! Every rule has a stable kebab-case ID (used in diagnostics, `lint:
//! allow(…)` comments and the baseline ratchet), a one-line catalog
//! summary, a file scope from [`crate::config`], and a token-level check.
//! [`registry`] returns the rules in stable ID order; adding a rule means
//! writing the struct, registering it here, and giving it a firing and a
//! clean fixture in `tests/rule_fixtures.rs`.

mod determinism;
mod panics;
mod perf;
mod protocol;
mod timing;

use crate::engine::{Rule, META_MALFORMED, META_UNUSED};
use crate::lexer::Tok;

pub use determinism::NondeterministicIteration;
pub use panics::{ForbiddenPanic, UncheckedIndex, UndocumentedPanic};
pub use perf::LinearScanInHotPath;
pub use protocol::{EngineBypass, FeatureHookHygiene, UnanchoredEdge, UnboundedRetry};
pub use timing::{
    OpenLoopClock, SaturatingCycleArith, TruncatingCycleCast, WallClockInSim, WindowBoundaryDiv,
};

/// Catalog-only entries for the two meta rules the engine enforces itself
/// (they are not suppressible, so they never run as ordinary checks).
struct MetaRule {
    id: &'static str,
    summary: &'static str,
}

impl Rule for MetaRule {
    fn id(&self) -> &'static str {
        self.id
    }
    fn summary(&self) -> &'static str {
        self.summary
    }
    fn applies(&self, _rel: &str) -> bool {
        false
    }
    fn check(&self, _ctx: &crate::engine::FileCtx, _out: &mut Vec<crate::diag::Diagnostic>) {}
}

/// All rules in stable ID order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = vec![
        Box::new(EngineBypass),
        Box::new(FeatureHookHygiene),
        Box::new(ForbiddenPanic),
        Box::new(LinearScanInHotPath),
        Box::new(MetaRule {
            id: META_MALFORMED,
            summary: "every `lint: allow(…)` must name known rules and carry a `-- reason`",
        }),
        Box::new(NondeterministicIteration),
        Box::new(OpenLoopClock),
        Box::new(SaturatingCycleArith),
        Box::new(TruncatingCycleCast),
        Box::new(UnanchoredEdge),
        Box::new(UnboundedRetry),
        Box::new(UncheckedIndex),
        Box::new(UndocumentedPanic),
        Box::new(MetaRule {
            id: META_UNUSED,
            summary: "a suppression matching no finding must be removed",
        }),
        Box::new(WallClockInSim),
        Box::new(WindowBoundaryDiv),
    ];
    rules.sort_by_key(|r| r.id());
    rules
}

/// The stable rule IDs, in registry order.
pub fn rule_ids() -> Vec<&'static str> {
    registry().iter().map(|r| r.id()).collect()
}

/// True when `code[i..]` starts a method call `.name(`.
pub(crate) fn method_call(code: &[Tok], i: usize, name: &str) -> bool {
    code[i].is_punct('.')
        && code.get(i + 1).is_some_and(|t| t.is_ident(name))
        && code.get(i + 2).is_some_and(|t| t.is_punct('('))
}

/// True when `code[i..]` starts a macro invocation `name!(`/`name![`/`name!{`.
pub(crate) fn macro_call(code: &[Tok], i: usize, name: &str) -> bool {
    code[i].is_ident(name)
        && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
        && code
            .get(i + 2)
            .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
}
