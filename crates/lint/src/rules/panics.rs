//! Panic-path and unchecked-indexing rules for the protocol hot paths.

use crate::config::{HANDLER_FILES, INDEX_FILES};
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, Rule};
use crate::rules::{macro_call, method_call};

fn panic_scope(rel: &str) -> bool {
    HANDLER_FILES.contains(&rel) || INDEX_FILES.contains(&rel)
}

/// `forbidden-panic`: `.unwrap()`, `todo!` and `unimplemented!` are
/// forbidden outright in protocol hot paths — a lost diff must surface as
/// a typed error or a documented invariant, never a bare unwrap.
pub struct ForbiddenPanic;

impl Rule for ForbiddenPanic {
    fn id(&self) -> &'static str {
        "forbidden-panic"
    }
    fn summary(&self) -> &'static str {
        "`.unwrap()` / `todo!` / `unimplemented!` are forbidden in protocol hot paths"
    }
    fn applies(&self, rel: &str) -> bool {
        panic_scope(rel)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        for i in 0..ctx.code.len() {
            if method_call(&ctx.code, i, "unwrap") {
                out.push(ctx.diag(
                    &ctx.code[i + 1],
                    self.id(),
                    "`.unwrap()` in a protocol hot path".into(),
                ));
            }
            for mac in ["todo", "unimplemented"] {
                if macro_call(&ctx.code, i, mac) {
                    out.push(ctx.diag(
                        &ctx.code[i],
                        self.id(),
                        format!("`{mac}!` in a protocol hot path"),
                    ));
                }
            }
        }
    }
}

/// `undocumented-panic`: `.expect(…)` and `panic!(…)` must carry an
/// `// invariant:` justification on the same line or in the comment block
/// directly above.
pub struct UndocumentedPanic;

impl Rule for UndocumentedPanic {
    fn id(&self) -> &'static str {
        "undocumented-panic"
    }
    fn summary(&self) -> &'static str {
        "`.expect(…)` / `panic!(…)` need an `// invariant:` justification"
    }
    fn applies(&self, rel: &str) -> bool {
        panic_scope(rel)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        for i in 0..ctx.code.len() {
            let hit = if method_call(&ctx.code, i, "expect") {
                Some((&ctx.code[i + 1], "`.expect(…)`"))
            } else if macro_call(&ctx.code, i, "panic") {
                Some((&ctx.code[i], "`panic!(…)`"))
            } else {
                None
            };
            if let Some((tok, what)) = hit {
                if !ctx.justified(tok.line, "invariant:") {
                    out.push(ctx.diag(
                        tok,
                        self.id(),
                        format!("{what} without an `// invariant:` justification"),
                    ));
                }
            }
        }
    }
}

/// `unchecked-index`: direct indexing of the page/bit-vector buffers (and
/// `.try_into().expect` conversions) in the data-plane files needs an
/// `// invariant:` naming the guarding check.
pub struct UncheckedIndex;

impl Rule for UncheckedIndex {
    fn id(&self) -> &'static str {
        "unchecked-index"
    }
    fn summary(&self) -> &'static str {
        "data-plane `self.data[…]`/`self.bits[…]` need an `// invariant:` naming the guard"
    }
    fn applies(&self, rel: &str) -> bool {
        INDEX_FILES.contains(&rel)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            let field_index = code[i].is_ident("self")
                && code.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && code
                    .get(i + 2)
                    .is_some_and(|t| t.is_ident("data") || t.is_ident("bits"))
                && code.get(i + 3).is_some_and(|t| t.is_punct('['));
            let lossy_convert = method_call(code, i, "try_into")
                && code.get(i + 3).is_some_and(|t| t.is_punct(')'))
                && code.get(i + 4).is_some_and(|t| t.is_punct('.'))
                && code.get(i + 5).is_some_and(|t| t.is_ident("expect"));
            if field_index || lossy_convert {
                let tok = if field_index {
                    &code[i + 2]
                } else {
                    &code[i + 1]
                };
                if !ctx.justified(tok.line, "invariant:") {
                    out.push(ctx.diag(
                        tok,
                        self.id(),
                        "unchecked data-plane access without an `// invariant:` naming its guard"
                            .into(),
                    ));
                }
            }
        }
    }
}
