//! Asymptotics rules: the event core and the network are the two
//! subsystems whose per-event cost multiplies by the cluster size, so an
//! accidental O(n) container scan there turns a 256-node run quadratic.

use crate::config::{in_dirs, HOT_SCAN_DIRS};
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, Rule};
use crate::rules::method_call;

/// `linear-scan-in-hot-path`: `Vec::remove` (shifting) and `retain`
/// (full-container walk) are forbidden in the event-core and network
/// crates unless the site carries a `// linear:` comment bounding the
/// scan. The calendar queue and the indexed router exist precisely
/// because these scans, harmless at 4 nodes, dominated at 256; this rule
/// keeps them from creeping back. `swap_remove` stays legal — it is O(1).
pub struct LinearScanInHotPath;

impl Rule for LinearScanInHotPath {
    fn id(&self) -> &'static str {
        "linear-scan-in-hot-path"
    }
    fn summary(&self) -> &'static str {
        "`.remove(…)`/`.retain(…)` in event-core/network crates need a `// linear:` bound"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, HOT_SCAN_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            if !(method_call(code, i, "remove") || method_call(code, i, "retain")) {
                continue;
            }
            let tok = &code[i + 1];
            if !ctx.justified(tok.line, "linear:") {
                out.push(ctx.diag(
                    tok,
                    self.id(),
                    format!(
                        "`.{}(…)` in an event-core/network hot path without a \
                         `// linear:` comment bounding the scan (prefer \
                         `swap_remove`, an index, or a calendar bucket)",
                        tok.text
                    ),
                ));
            }
        }
    }
}
