//! `nondeterministic-iteration`: hash-order iteration in crates whose
//! output feeds checksums, metrics JSON, bench cache keys or committed
//! golden files.
//!
//! This is the rule the old line scanner could not express: it needs to
//! know *which names* in a file are bound to `HashMap`/`HashSet` before it
//! can object to `name.iter()`. The binder is token-level and per-file:
//! it records names from field declarations and let-bindings
//! (`name: HashMap<…>`, `let name = HashMap::new()`, `let mut name:
//! HashSet<…> = …`), then flags order-dependent consumption of those
//! names — iteration adapters and order-sensitive visitors like
//! `retain`/`drain`, plus direct `for … in name` loops. Point lookups
//! (`get`, `entry`, `insert`, `contains_key`) stay silent: they are
//! order-free. Sites that sort after collecting are true negatives —
//! suppress them with a `lint: allow` naming the sort.

use std::collections::BTreeSet;

use crate::config::{in_dirs, DETERMINISTIC_OUTPUT_DIRS};
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, Rule};
use crate::lexer::{Tok, TokKind};

/// Methods whose results (or visit order) depend on hash order.
const ORDER_DEPENDENT: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }
    fn summary(&self) -> &'static str {
        "no hash-order iteration in crates feeding checksums, metrics or cache keys"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, DETERMINISTIC_OUTPUT_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let names = bind_hash_names(&ctx.code);
        if names.is_empty() {
            return;
        }
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = &code[i];
            if t.kind != TokKind::Ident || !names.contains(t.text.as_str()) {
                continue;
            }
            // `name.method(` with an order-dependent method.
            let method = code
                .get(i + 1)
                .filter(|d| d.is_punct('.'))
                .and_then(|_| code.get(i + 2))
                .filter(|m| {
                    m.kind == TokKind::Ident
                        && ORDER_DEPENDENT.contains(&m.text.as_str())
                        && code.get(i + 3).is_some_and(|p| p.is_punct('('))
                });
            if let Some(m) = method {
                out.push(ctx.diag(
                    m,
                    self.id(),
                    format!(
                        "hash-order `{}.{}(…)` in a deterministic-output crate — use a \
                         BTree collection or sort before consuming",
                        t.text, m.text
                    ),
                ));
                continue;
            }
            // `for x in [&[mut]] name {` / `for x in [&[mut]] self.name {`.
            let mut j = i;
            if j >= 2 && code[j - 1].is_punct('.') && code[j - 2].is_ident("self") {
                j -= 2;
            }
            let mut k = j;
            while k > 0 && (code[k - 1].is_punct('&') || code[k - 1].is_ident("mut")) {
                k -= 1;
            }
            let in_loop = k > 0 && code[k - 1].is_ident("in");
            let body_next = code.get(i + 1).is_some_and(|n| n.is_punct('{'));
            if in_loop && body_next {
                out.push(ctx.diag(
                    t,
                    self.id(),
                    format!(
                        "hash-order `for … in {}` in a deterministic-output crate — use a \
                         BTree collection or sort first",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Names bound to `HashMap`/`HashSet` anywhere in the file: field or
/// binding type ascriptions (`name: HashMap<…>`) and constructor bindings
/// (`let [mut] name = HashMap::new/with_capacity/from(…)`).
fn bind_hash_names(code: &[Tok]) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let t = &code[i];
        let is_hash = t.is_ident("HashMap") || t.is_ident("HashSet");
        if !is_hash {
            continue;
        }
        // `name : [std :: collections ::] HashMap` — walk back over the path.
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct(':') && code[j - 2].is_punct(':') {
            if j >= 3 && code[j - 3].kind == TokKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        if j >= 2 && code[j - 1].is_punct(':') && !code[j - 2].is_punct(':') {
            if let Some(name) = code.get(j - 2).filter(|n| n.kind == TokKind::Ident) {
                names.insert(name.text.as_str());
                continue;
            }
        }
        // `let [mut] name = HashMap :: new (` — walk back over `=`.
        let ctor = code.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && code.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && code.get(i + 3).is_some_and(|m| {
                m.is_ident("new") || m.is_ident("with_capacity") || m.is_ident("from")
            });
        if ctor && j >= 2 && code[j - 1].is_punct('=') && code[j - 2].kind == TokKind::Ident {
            names.insert(code[j - 2].text.as_str());
        }
    }
    names
}
