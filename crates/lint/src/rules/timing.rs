//! Timing-plane rules: cycle counters must never silently truncate, wrap
//! without justification, or come from the wall clock.

use crate::config::{
    in_dirs, CYCLE_ARITH_DIRS, CYCLE_CAST_DIRS, OPEN_LOOP_DIRS, SIMULATED_TIME_DIRS,
    WINDOW_MATH_DIRS,
};
use crate::diag::Diagnostic;
use crate::engine::{FileCtx, Rule};
use crate::lexer::TokKind;

const TRUNCATING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// `truncating-cycle-cast`: a line that handles a cycle quantity must not
/// cast to a sub-64-bit integer — silent wraparound in the timing plane is
/// exactly the class of bug tests cannot see.
pub struct TruncatingCycleCast;

impl Rule for TruncatingCycleCast {
    fn id(&self) -> &'static str {
        "truncating-cycle-cast"
    }
    fn summary(&self) -> &'static str {
        "no `as u8/u16/u32/i8/i16/i32` on lines handling cycle quantities"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, CYCLE_CAST_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            if !code[i].is_ident("as") {
                continue;
            }
            let Some(target) = code.get(i + 1) else {
                continue;
            };
            if target.kind != TokKind::Ident || !TRUNCATING_TARGETS.contains(&target.text.as_str())
            {
                continue;
            }
            let cycle_line = ctx
                .code_on_line(code[i].line)
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("cycle"));
            if cycle_line {
                out.push(ctx.diag(
                    &code[i],
                    self.id(),
                    format!("truncating `as {}` on a cycle quantity", target.text),
                ));
            }
        }
    }
}

/// `wall-clock-in-sim`: `Instant`/`SystemTime` are forbidden in the
/// simulated-time crates — every timestamp there must be simulated cycles,
/// or determinism (and the byte-identical exports) dies.
pub struct WallClockInSim;

impl Rule for WallClockInSim {
    fn id(&self) -> &'static str {
        "wall-clock-in-sim"
    }
    fn summary(&self) -> &'static str {
        "no `Instant`/`SystemTime` in simulated-time crates"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, SIMULATED_TIME_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        for t in &ctx.code {
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                out.push(ctx.diag(
                    t,
                    self.id(),
                    format!("`{}` in a simulated-time crate (use cycles)", t.text),
                ));
            }
        }
    }
}

/// `window-boundary-div`: integer division by the time-series window width
/// floors, so a cycle count on a window boundary silently lands one window
/// early and partial trailing windows under-report rates. Every raw
/// `/ window_width` in the time-series consumers must say how the boundary
/// is handled via a `// window:` comment, or carry a suppression.
pub struct WindowBoundaryDiv;

impl Rule for WindowBoundaryDiv {
    fn id(&self) -> &'static str {
        "window-boundary-div"
    }
    fn summary(&self) -> &'static str {
        "raw `/ window_width` needs a `// window:` boundary justification"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, WINDOW_MATH_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            if !code[i].is_punct('/')
                || !code.get(i + 1).is_some_and(|t| t.is_ident("window_width"))
            {
                continue;
            }
            let tok = &code[i + 1];
            if !ctx.justified(tok.line, "window:") {
                out.push(
                    ctx.diag(
                        tok,
                        self.id(),
                        "division by `window_width` without a `// window:` comment \
                     saying how the boundary case is handled"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Identifier fragments that mark a value as open-loop clock state:
/// arrival times, inter-arrival gaps, deadlines, the stream clock.
const CLOCK_IDENT_PARTS: &[&str] = &["clock", "gap", "arrival", "deadline"];

/// Identifiers that are clock state only as exact names (`at` is the
/// arrival-time field; substring matching would catch half the language).
const CLOCK_IDENT_EXACT: &[&str] = &["at"];

/// Binary arithmetic operators policed by [`OpenLoopClock`]. Comparisons
/// and shifts are deliberately absent: ordering checks are unit-safe, and
/// the fixed-point shift pipeline cites `Cycles` at its ends.
const CLOCK_ARITH_OPS: &[char] = &['+', '-', '*', '/', '%'];

/// `open-loop-clock`: arrival-time arithmetic in the open-loop service
/// crate must visibly be simulated-cycle math. A line that combines clock
/// state (arrival times, gaps, deadlines) with arithmetic must cite the
/// `Cycles` type on the line or carry a `// clock:` comment saying why the
/// units are right — the one thing an open-loop measurement cannot survive
/// is host wall-clock (or unit-confused) time sneaking into the stream.
pub struct OpenLoopClock;

impl Rule for OpenLoopClock {
    fn id(&self) -> &'static str {
        "open-loop-clock"
    }
    fn summary(&self) -> &'static str {
        "arrival/clock arithmetic in the service crate must cite `Cycles` or a `// clock:` comment"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, OPEN_LOOP_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let mut done_line = 0;
        for t in &ctx.code {
            if t.line == done_line || t.kind != TokKind::Ident {
                continue;
            }
            let lower = t.text.to_ascii_lowercase();
            let clockish = CLOCK_IDENT_EXACT.contains(&lower.as_str())
                || CLOCK_IDENT_PARTS.iter().any(|p| lower.contains(p));
            if !clockish {
                continue;
            }
            let line = ctx.code_on_line(t.line);
            // `->` lexes as `-` `>`: a return-type arrow is not arithmetic.
            let has_arith = line.iter().enumerate().any(|(j, o)| {
                CLOCK_ARITH_OPS.iter().any(|&c| o.is_punct(c))
                    && !(o.is_punct('-') && line.get(j + 1).is_some_and(|n| n.is_punct('>')))
            });
            if !has_arith || line.iter().any(|o| o.is_ident("Cycles")) {
                continue;
            }
            if !ctx.justified(t.line, "clock:") {
                out.push(ctx.diag(
                    t,
                    self.id(),
                    format!(
                        "arithmetic on clock state `{}` without a `Cycles` type \
                         citation or a `// clock:` comment",
                        t.text
                    ),
                ));
            }
            done_line = t.line;
        }
    }
}

/// `unjustified-saturating-cycle-arith`: saturating/wrapping arithmetic in
/// the simulated-time crates is overwhelmingly cycle-counter math; each
/// site must cite why overflow is impossible or intended via an
/// `// overflow:` comment, or carry a suppression. A saturation that
/// silently clamps a cycle counter bends every curve downstream of it.
pub struct SaturatingCycleArith;

impl Rule for SaturatingCycleArith {
    fn id(&self) -> &'static str {
        "unjustified-saturating-cycle-arith"
    }
    fn summary(&self) -> &'static str {
        "`saturating_*`/`wrapping_*` need an `// overflow:` justification"
    }
    fn applies(&self, rel: &str) -> bool {
        in_dirs(rel, CYCLE_ARITH_DIRS)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            let is_call = code[i].is_punct('.')
                && code.get(i + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && (t.text.starts_with("saturating_") || t.text.starts_with("wrapping_"))
                })
                && code.get(i + 2).is_some_and(|t| t.is_punct('('));
            if !is_call {
                continue;
            }
            let tok = &code[i + 1];
            if !ctx.justified(tok.line, "overflow:") {
                out.push(ctx.diag(
                    tok,
                    self.id(),
                    format!(
                        "`.{}(…)` without an `// overflow:` comment saying why \
                         overflow is impossible or intended",
                        tok.text
                    ),
                ));
            }
        }
    }
}
