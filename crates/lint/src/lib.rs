//! # ncp2-lint — token-level static analysis for the NCP2 workspace
//!
//! The repro's value proposition is byte-reproducible simulated-time runs;
//! the hazards that break it (hash-order iteration reaching a metrics
//! file, a wall-clock read in the simulation, an ungated observability
//! hook, an uncapped retry loop) rarely fail a test — they just bend the
//! curves. This crate checks the source itself, in the spirit of
//! mechanically checking coherence protocols rather than only testing
//! them.
//!
//! Architecture (see DESIGN.md §13):
//!
//! * [`lexer`] — a line/col-tracked Rust token stream that correctly skips
//!   string literals (plain/raw/byte), char literals, lifetimes and nested
//!   block comments, so rules never misfire on prose or test data;
//! * [`engine`] — per-file context (code tokens, comment index,
//!   `#[cfg(…)]` gate map, `#[cfg(test)]` boundary, parsed suppressions)
//!   and the rule driver;
//! * [`rules`] — the registry. Every rule has a stable kebab-case ID, a
//!   file scope from [`config`], and firing/clean fixture tests;
//! * [`diag`] — structured `file:line:col` diagnostics and the
//!   byte-deterministic JSON report;
//! * [`baseline`] — the suppression-debt ratchet behind
//!   `LINT_BASELINE.json`.
//!
//! Suppressions are inline comments that must justify themselves:
//!
//! ```text
//! map.values().collect(); // lint: allow(nondeterministic-iteration) -- sorted two lines down
//! ```
//!
//! A suppression with no reason, an unknown rule ID, or no matching
//! finding is itself a finding. Test modules (`#[cfg(test)]` onward) are
//! exempt from all rules.

pub mod baseline;
pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use diag::{Diagnostic, Report, Suppressed};
pub use engine::{FileCtx, Rule};

/// Lints a single in-memory source file under its workspace-relative path.
/// This is the fixture-test entry point: scopes resolve exactly as they
/// would for a real file at `rel`.
pub fn lint_source(rel: &str, src: &str) -> Report {
    let rules = rules::registry();
    let ids = rules::rule_ids();
    let ctx = FileCtx::new(rel, src, &ids, config::whole_file_gate(rel));
    let (findings, suppressed) = engine::run_rules(&ctx, &rules);
    let mut report = Report {
        findings,
        suppressed,
        files_scanned: 1,
    };
    report.normalize();
    report
}

/// Lints every non-test Rust source in the workspace (each `crates/*/src`
/// tree, `bin/` included; `tests/`, `benches/` and `examples/` are test
/// surface and exempt). File order is sorted, so reports are
/// byte-deterministic across platforms and reruns.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let rules = rules::registry();
    let ids = rules::rule_ids();
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel_path = path.strip_prefix(root).unwrap_or(&path);
        let rel = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let ctx = FileCtx::new(&rel, &src, &ids, config::whole_file_gate(&rel));
        let (findings, suppressed) = engine::run_rules(&ctx, &rules);
        report.findings.extend(findings);
        report.suppressed.extend(suppressed);
        report.files_scanned += 1;
    }
    report.normalize();
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
