//! The per-file analysis context and the rule-driving engine.
//!
//! [`FileCtx`] is built once per file from the token stream and hands rules
//! everything context-sensitive they need: code tokens (strings and
//! comments already out of the way), per-line comment text for
//! justification tags, the `#[cfg(…)]` gate map for feature-hygiene
//! checks, the `#[cfg(test)]` boundary, and the parsed inline
//! suppressions.
//!
//! Suppression syntax (normal `//` comments only — doc comments are prose
//! and never parsed): `lint: allow(rule-id) -- reason`, with a non-empty
//! reason after `--` and one or more comma-separated rule IDs. A trailing
//! suppression covers its own line; a comment-line suppression covers the
//! next code line (across further comment lines, not across blanks).
//! Malformed or unused suppressions are themselves findings, and
//! suppressions never apply to those two meta rules.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Suppressed};
use crate::lexer::{lex, Tok, TokKind};

/// A `#[cfg(…)]`-gated line range. `features` holds every feature name the
/// predicate mentions, whatever the polarity — the zero-cost discipline
/// pairs `#[cfg(feature = "x")]` items with `#[cfg(not(feature = "x"))]`
/// stubs, and both count as "gated for x".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub start: u32,
    pub end: u32,
    pub features: Vec<String>,
}

/// One parsed `lint: allow` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment itself.
    pub line: u32,
    /// Code line it covers (`None` when no code line follows).
    pub target: Option<u32>,
    /// Rule IDs it silences.
    pub rules: Vec<String>,
    /// Justification text after `--`.
    pub reason: String,
    /// Parse error, when the directive is not well-formed.
    pub malformed: Option<String>,
}

/// Everything a rule may inspect about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Raw source lines (0-indexed by `line - 1`).
    pub lines: Vec<&'a str>,
    /// Non-comment tokens in source order.
    pub code: Vec<Tok>,
    /// First line of the trailing `#[cfg(test)]` region (`u32::MAX` if none).
    pub test_start: u32,
    /// `#[cfg(…)]` gate map.
    pub gates: Vec<Gate>,
    /// Parsed `lint: allow` comments (non-test region only).
    pub suppressions: Vec<Suppression>,
    /// Valid rule IDs, for suppression validation.
    pub known_rules: &'a [&'static str],
    /// Files compiled only under a feature (gated at their `mod` site in
    /// another file), so every line counts as gated for that feature.
    pub whole_file_gate: Option<&'a str>,
    /// Concatenated comment text per line (block comments cover every line
    /// they span).
    comment_text: BTreeMap<u32, String>,
    /// Lines bearing at least one code token.
    code_lines: BTreeSet<u32>,
}

impl<'a> FileCtx<'a> {
    /// Lexes `src` and builds the full context.
    pub fn new(
        rel: &'a str,
        src: &'a str,
        known_rules: &'a [&'static str],
        whole_file_gate: Option<&'a str>,
    ) -> Self {
        let toks = lex(src);
        let mut code = Vec::new();
        let mut comment_text: BTreeMap<u32, String> = BTreeMap::new();
        let mut code_lines = BTreeSet::new();
        let mut comment_cols: BTreeMap<u32, u32> = BTreeMap::new();
        let mut doc_only: BTreeMap<u32, bool> = BTreeMap::new();
        for t in toks {
            if t.kind.is_comment() {
                for (i, piece) in t.text.split('\n').enumerate() {
                    let line = t.line + i as u32;
                    let slot = comment_text.entry(line).or_default();
                    slot.push_str(piece);
                    slot.push(' ');
                    let doc = doc_only.entry(line).or_insert(true);
                    *doc &= t.kind.is_doc();
                    if i == 0 {
                        comment_cols.entry(line).or_insert(t.col);
                    }
                }
                // Non-doc line comments may carry suppressions; parsed below
                // from the per-line records to keep one code path.
                if t.kind == TokKind::LineComment {
                    doc_only.insert(t.line, false);
                }
            } else {
                code_lines.insert(t.line);
                code.push(t);
            }
        }
        let test_start = find_test_start(&code);
        let gates = build_gates(&code);
        let mut ctx = FileCtx {
            rel,
            lines: src.lines().collect(),
            code,
            test_start,
            gates,
            suppressions: Vec::new(),
            known_rules,
            whole_file_gate,
            comment_text,
            code_lines,
        };
        ctx.suppressions = parse_suppressions(&ctx, &doc_only, &comment_cols);
        ctx
    }

    /// True when `line` falls in the trailing `#[cfg(test)]` module.
    pub fn in_test_region(&self, line: u32) -> bool {
        line >= self.test_start
    }

    /// The trimmed source text of a 1-based line (for snippets).
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// True when a justification tag (e.g. `invariant:`, `overflow:`)
    /// appears in a comment on `line` or in the contiguous comment block
    /// directly above it.
    pub fn justified(&self, line: u32, tag: &str) -> bool {
        if self
            .comment_text
            .get(&line)
            .is_some_and(|t| t.contains(tag))
        {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.code_lines.contains(&l) {
                return false;
            }
            match self.comment_text.get(&l) {
                Some(t) if t.contains(tag) => return true,
                Some(_) => continue,
                None => return false,
            }
        }
        false
    }

    /// True when `line` sits inside a `#[cfg(…)]` region (or a whole-file
    /// gate) that mentions `feature`.
    pub fn gated_for(&self, line: u32, feature: &str) -> bool {
        if self.whole_file_gate == Some(feature) {
            return true;
        }
        self.gates
            .iter()
            .any(|g| g.start <= line && line <= g.end && g.features.iter().any(|f| f == feature))
    }

    /// Indices of code tokens whose `line` equals the given line.
    pub fn code_on_line(&self, line: u32) -> &[Tok] {
        let lo = self.code.partition_point(|t| t.line < line);
        let hi = self.code.partition_point(|t| t.line <= line);
        &self.code[lo..hi]
    }

    /// Emits a diagnostic at a token.
    pub fn diag(&self, t: &Tok, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.rel.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
            snippet: self.snippet(t.line),
        }
    }
}

/// A lint rule: stable ID, catalog summary, file scope and the check.
pub trait Rule {
    fn id(&self) -> &'static str;
    fn summary(&self) -> &'static str;
    fn applies(&self, rel: &str) -> bool;
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>);
}

/// Line of the first `#[cfg(test)]`-style attribute (any cfg predicate
/// mentioning `test`), found on real tokens — a mention inside a string or
/// comment no longer truncates the scan, unlike the old `src.find`.
fn find_test_start(code: &[Tok]) -> u32 {
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_punct('#') && code[i + 1].is_punct('[') {
            let end = matching(code, i + 1, '[', ']');
            if code[i + 2..end].iter().any(|t| t.is_ident("test"))
                && code[i + 2..end].iter().any(|t| t.is_ident("cfg"))
            {
                return code[i].line;
            }
            i = end;
        }
        i += 1;
    }
    u32::MAX
}

/// Index of the token closing the group opened at `open` (which must hold
/// the opening delimiter); saturates at the last token when unbalanced.
fn matching(code: &[Tok], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Builds the `#[cfg(…)]` gate map: each attribute's region runs to the end
/// of the item/statement/field it decorates — the matching `}` of the first
/// brace it opens, or the first `;`/`,` at top depth.
fn build_gates(code: &[Tok]) -> Vec<Gate> {
    let mut gates = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(code[i].is_punct('#') && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let close = matching(code, i + 1, '[', ']');
        let attr = &code[i + 2..close];
        let start = code[i].line;
        let mut features = Vec::new();
        if attr.first().is_some_and(|t| t.is_ident("cfg")) {
            let mut j = 0;
            while j + 2 < attr.len() {
                if attr[j].is_ident("feature")
                    && attr[j + 1].is_punct('=')
                    && attr[j + 2].kind == TokKind::Str
                {
                    features.push(unquote(&attr[j + 2].text));
                }
                j += 1;
            }
        }
        if features.is_empty() {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = close + 1;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            k = matching(code, k + 1, '[', ']') + 1;
        }
        // Walk to the end of the decorated item. Angle depth is tracked
        // (clamped, so `->` stays harmless) only to ignore generic commas.
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut end = code.last().map(|t| t.line).unwrap_or(start);
        while k < code.len() {
            let t = &code[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct('{') {
                if depth == 0 {
                    end = code[matching(code, k, '{', '}')].line;
                    break;
                }
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    // Enclosing scope closed before the item ended (struct
                    // literal tail): stop short.
                    end = t.line;
                    break;
                }
                depth -= 1;
            } else if (t.is_punct(';') || (t.is_punct(',') && angle == 0)) && depth == 0 {
                end = t.line;
                break;
            }
            k += 1;
        }
        gates.push(Gate {
            start,
            end,
            features,
        });
        i = close + 1;
    }
    gates
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

/// Parses every `lint:` directive from non-doc comment lines.
fn parse_suppressions(
    ctx: &FileCtx,
    doc_only: &BTreeMap<u32, bool>,
    comment_cols: &BTreeMap<u32, u32>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (&line, text) in &ctx.comment_text {
        if line >= ctx.test_start || doc_only.get(&line).copied().unwrap_or(true) {
            continue;
        }
        let Some(pos) = text.find("lint:") else {
            continue;
        };
        let directive = text[pos + "lint:".len()..].trim_start();
        let mut sup = Suppression {
            line,
            target: None,
            rules: Vec::new(),
            reason: String::new(),
            malformed: None,
        };
        let parsed = parse_allow(directive, &mut sup, ctx.known_rules);
        if let Err(e) = parsed {
            sup.malformed = Some(e);
        }
        // Trailing comment covers its own line; a standalone comment line
        // covers the next code line reached through comment lines only.
        let col = comment_cols.get(&line).copied().unwrap_or(1);
        let has_code_before = ctx.code_on_line(line).iter().any(|t| t.col < col);
        if has_code_before {
            sup.target = Some(line);
        } else {
            let mut l = line + 1;
            loop {
                if ctx.code_lines.contains(&l) {
                    sup.target = Some(l);
                    break;
                }
                if !ctx.comment_text.contains_key(&l) {
                    break;
                }
                l += 1;
            }
        }
        out.push(sup);
    }
    out
}

/// Parses `allow(rule-a, rule-b) -- reason` into `sup`.
fn parse_allow(s: &str, sup: &mut Suppression, known: &[&'static str]) -> Result<(), String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err("unknown `lint:` directive (only `allow(…) -- reason`)".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("`lint: allow` needs a parenthesized rule list".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule list in `lint: allow(…)`".into());
    };
    for id in rest[..close].split(',') {
        let id = id.trim();
        if id.is_empty() {
            return Err("empty rule ID in `lint: allow(…)`".into());
        }
        if !known.contains(&id) {
            return Err(format!("unknown rule ID `{id}` in `lint: allow(…)`"));
        }
        sup.rules.push(id.to_string());
    }
    if sup.rules.is_empty() {
        return Err("empty rule list in `lint: allow(…)`".into());
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("`lint: allow(…)` needs ` -- reason` (the justification is mandatory)".into());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason after `--` in `lint: allow(…)`".into());
    }
    sup.reason = reason.to_string();
    Ok(())
}

/// Meta rules handled by the engine itself (not suppressible).
pub const META_MALFORMED: &str = "malformed-suppression";
pub const META_UNUSED: &str = "unused-suppression";

/// Runs every applicable rule over one file and resolves suppressions.
/// Returns the surviving findings and the suppression ledger.
pub fn run_rules(ctx: &FileCtx, rules: &[Box<dyn Rule>]) -> (Vec<Diagnostic>, Vec<Suppressed>) {
    let mut raw = Vec::new();
    for rule in rules {
        if rule.applies(ctx.rel) {
            rule.check(ctx, &mut raw);
        }
    }
    raw.retain(|d| !ctx.in_test_region(d.line));

    let mut used = vec![0usize; ctx.suppressions.len()];
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for d in raw {
        let hit = ctx.suppressions.iter().enumerate().find(|(_, s)| {
            s.malformed.is_none()
                && s.target == Some(d.line)
                && s.rules.iter().any(|r| r == d.rule)
                && d.rule != META_MALFORMED
                && d.rule != META_UNUSED
        });
        match hit {
            Some((i, s)) => {
                used[i] += 1;
                suppressed.push(Suppressed {
                    file: d.file,
                    line: d.line,
                    rule: d.rule,
                    reason: s.reason.clone(),
                });
            }
            None => findings.push(d),
        }
    }
    for (i, s) in ctx.suppressions.iter().enumerate() {
        if let Some(err) = &s.malformed {
            findings.push(Diagnostic {
                file: ctx.rel.to_string(),
                line: s.line,
                col: 1,
                rule: META_MALFORMED,
                message: err.clone(),
                snippet: ctx.snippet(s.line),
            });
        } else if used[i] == 0 {
            findings.push(Diagnostic {
                file: ctx.rel.to_string(),
                line: s.line,
                col: 1,
                rule: META_UNUSED,
                message: format!(
                    "suppression for {} matches no finding — remove it",
                    s.rules.join(", ")
                ),
                snippet: ctx.snippet(s.line),
            });
        }
    }
    (findings, suppressed)
}
