//! A minimal Rust lexer with line/column tracking.
//!
//! The whole point of this module is what it *refuses* to see: the old
//! line-oriented `contains()` scanner in xtask fired on rule patterns inside
//! string literals and missed everything after the first `/*` of a block
//! comment. This lexer produces a token stream in which string literals
//! (plain, raw, byte, byte-raw), char literals, lifetimes and comments
//! (line, doc, block — including *nested* block comments) are each a single
//! token, so rules can pattern-match over code tokens and never trip on
//! prose or test data.
//!
//! It is not a full Rust lexer — multi-character operators come out as
//! individual punctuation tokens (`<<` is two `<`), and float exponents may
//! split — but every token boundary that matters for lint soundness
//! (string/comment/char/lifetime recognition, nesting) follows the real
//! language.

/// What a token is, at the granularity rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `fn`, `unwrap`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Single punctuation character.
    Punct,
    /// `// …` comment that is not a doc comment.
    LineComment,
    /// `/// …` or `//! …` doc comment.
    DocLineComment,
    /// `/* … */` comment (nesting folded into one token), not a doc comment.
    BlockComment,
    /// `/** … */` or `/*! … */` doc comment.
    DocBlockComment,
}

impl TokKind {
    /// True for the four comment kinds.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment
                | TokKind::DocLineComment
                | TokKind::BlockComment
                | TokKind::DocBlockComment
        )
    }

    /// True for doc comments (which never carry lint suppressions — doc
    /// prose routinely *describes* the suppression syntax).
    pub fn is_doc(self) -> bool {
        matches!(self, TokKind::DocLineComment | TokKind::DocBlockComment)
    }
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Raw source text of the token, delimiters included.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True when this is an identifier with exactly the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into a flat token stream (comments included, whitespace
/// dropped). Never fails: unterminated literals and comments extend to the
/// end of input, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let tok = match c {
            '/' if cur.peek_at(1) == Some('/') => line_comment(&mut cur),
            '/' if cur.peek_at(1) == Some('*') => block_comment(&mut cur),
            '"' => string(&mut cur),
            '\'' => char_or_lifetime(&mut cur),
            'r' | 'b' if raw_or_byte_start(&cur) => raw_or_byte(&mut cur),
            c if c == '_' || c.is_alphabetic() => ident(&mut cur),
            c if c.is_ascii_digit() => number(&mut cur),
            _ => {
                let mut text = String::new();
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
                (TokKind::Punct, text)
            }
        };
        toks.push(Tok {
            kind: tok.0,
            text: tok.1,
            line,
            col,
        });
    }
    toks
}

/// True when the cursor sits on a raw string (`r"`, `r#`), byte string
/// (`b"`), byte-raw string (`br"`, `br#`) or byte char (`b'`) prefix —
/// as opposed to a plain identifier starting with `r` or `b`.
fn raw_or_byte_start(cur: &Cursor) -> bool {
    // `r#…` is a raw *string* only when a quote follows the hash run;
    // otherwise it is a raw identifier (`r#type`) and belongs to `ident`.
    let hashes_then_quote = |from: usize| {
        let mut i = from;
        while cur.peek_at(i) == Some('#') {
            i += 1;
        }
        i > from && cur.peek_at(i) == Some('"')
    };
    match (cur.peek(), cur.peek_at(1), cur.peek_at(2)) {
        (Some('r'), Some('"'), _) => true,
        (Some('r'), Some('#'), _) => hashes_then_quote(1),
        (Some('b'), Some('"' | '\''), _) => true,
        (Some('b'), Some('r'), Some('"')) => true,
        (Some('b'), Some('r'), Some('#')) => hashes_then_quote(2),
        _ => false,
    }
}

fn line_comment(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `///` (but not `////`) and `//!` are doc comments.
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    let kind = if doc {
        TokKind::DocLineComment
    } else {
        TokKind::LineComment
    };
    (kind, text)
}

fn block_comment(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    // Consume the opening `/*`.
    for _ in 0..2 {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                for _ in 0..2 {
                    if let Some(c) = cur.bump() {
                        text.push(c);
                    }
                }
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                for _ in 0..2 {
                    if let Some(c) = cur.bump() {
                        text.push(c);
                    }
                }
            }
            (Some(_), _) => {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
    // `/**` (but not `/***` or the degenerate `/**/`) and `/*!` are doc.
    let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
        || text.starts_with("/*!");
    let kind = if doc {
        TokKind::DocBlockComment
    } else {
        TokKind::BlockComment
    };
    (kind, text)
}

/// Plain `"…"` string with backslash escapes.
fn string(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    if let Some(c) = cur.bump() {
        text.push(c); // opening quote
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    (TokKind::Str, text)
}

/// `r"…"`, `r#"…"#` (any hash count), `b"…"`, `b'…'`, `br#"…"#`.
fn raw_or_byte(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    // Consume the `r` / `b` / `br` prefix.
    while matches!(cur.peek(), Some('r' | 'b')) {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        if text.len() >= 2 {
            break;
        }
    }
    if cur.peek() == Some('\'') {
        // Byte char: delegate; it cannot be a lifetime.
        let (_, rest) = char_literal(cur);
        text.push_str(&rest);
        return (TokKind::Char, text);
    }
    let raw = text.ends_with('r');
    if raw {
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
        if let Some(c) = cur.bump() {
            text.push(c); // opening quote
        }
        // Scan for `"` followed by `hashes` hashes; no escapes in raw strings.
        'outer: while let Some(c) = cur.bump() {
            text.push(c);
            if c == '"' {
                for i in 0..hashes {
                    if cur.peek_at(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    if let Some(h) = cur.bump() {
                        text.push(h);
                    }
                }
                break;
            }
        }
        (TokKind::Str, text)
    } else {
        // `b"…"`: same escape rules as a plain string.
        let (_, rest) = string(cur);
        text.push_str(&rest);
        (TokKind::Str, text)
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) and lexes it.
fn char_or_lifetime(cur: &mut Cursor) -> (TokKind, String) {
    // A lifetime is `'` + ident whose run is NOT followed by a closing `'`.
    let mut run = 0usize;
    while let Some(c) = cur.peek_at(1 + run) {
        if c == '_' || c.is_alphanumeric() {
            run += 1;
        } else {
            break;
        }
    }
    let lifetime = run > 0 && cur.peek_at(1 + run) != Some('\'');
    if lifetime {
        let mut text = String::new();
        for _ in 0..=run {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
        return (TokKind::Lifetime, text);
    }
    char_literal(cur)
}

/// A char literal, cursor on the opening `'`. Handles `'\''`, `'\\'` and
/// `'\u{…}'`.
fn char_literal(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    if let Some(c) = cur.bump() {
        text.push(c); // opening quote
    }
    match cur.bump() {
        Some('\\') => {
            text.push('\\');
            if let Some(e) = cur.bump() {
                text.push(e);
                if e == 'u' {
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
        }
        Some(c) => text.push(c),
        None => return (TokKind::Char, text),
    }
    if cur.peek() == Some('\'') {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    (TokKind::Char, text)
}

fn ident(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    // Raw identifier prefix `r#` is folded into the ident token.
    if cur.peek() == Some('r') && cur.peek_at(1) == Some('#') {
        cur.bump();
        cur.bump();
    }
    while let Some(c) = cur.peek() {
        if c == '_' || c.is_alphanumeric() {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    (TokKind::Ident, text)
}

fn number(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '_' || c.is_ascii_alphanumeric() {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part only when a digit follows the dot, so `0..10` stays
    // three tokens.
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek() {
            if c == '_' || c.is_ascii_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    (TokKind::Num, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_swallow_rule_patterns() {
        let toks = code(r#"let s = "a.unwrap() // no";"#);
        assert_eq!(toks, vec!["let", "s", "=", r#""a.unwrap() // no""#, ";"]);
    }

    #[test]
    fn nested_block_comments_fold() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn raw_strings_respect_hashes() {
        let toks = code(r###"let s = r#"quote " inside"#;"###);
        assert_eq!(toks[3], r###"r#"quote " inside"#"###);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a u8) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
