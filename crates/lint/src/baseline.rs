//! The suppression-debt ratchet.
//!
//! Zero *unsuppressed* findings is a hard gate, but suppressions are debt:
//! each one is a hazard a human argued away. `LINT_BASELINE.json` pins the
//! per-rule suppression counts; CI fails when any rule's count grows, so
//! new debt needs a conscious `cargo xtask lint --update-baseline` in the
//! same change — the same trajectory discipline `BENCH_tier1.json` applies
//! to performance.

use std::fmt::Write as _;

use crate::diag::{json_str, Report};

/// Per-rule suppression counts, sorted by rule ID.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub per_rule: Vec<(String, usize)>,
}

impl Baseline {
    /// The baseline a report would pin.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline {
            per_rule: report
                .suppressed_by_rule()
                .into_iter()
                .map(|(r, n)| (r.to_string(), n))
                .collect(),
        }
    }

    /// Total suppression count.
    pub fn total(&self) -> usize {
        self.per_rule.iter().map(|&(_, n)| n).sum()
    }

    /// Byte-deterministic JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"format\": 1,\n  \"suppressed\": {");
        for (i, (rule, n)) in self.per_rule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    {}: {}", json_str(rule), n);
        }
        if !self.per_rule.is_empty() {
            s.push_str("\n  ");
        }
        let _ = write!(s, "}},\n  \"total\": {}\n}}\n", self.total());
        s
    }

    /// Parses the committed baseline file. The format is the flat object
    /// [`to_json`] writes; anything else is an error.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let obj = text
            .split_once("\"suppressed\"")
            .ok_or("missing \"suppressed\" key")?
            .1;
        let open = obj.find('{').ok_or("missing suppression object")?;
        let close = obj[open..].find('}').ok_or("unclosed suppression object")? + open;
        let mut per_rule = Vec::new();
        for entry in obj[open + 1..close].split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, val) = entry
                .split_once(':')
                .ok_or_else(|| format!("bad baseline entry `{entry}`"))?;
            let rule = key.trim().trim_matches('"').to_string();
            let n: usize = val
                .trim()
                .parse()
                .map_err(|_| format!("bad count in baseline entry `{entry}`"))?;
            per_rule.push((rule, n));
        }
        per_rule.sort();
        Ok(Baseline { per_rule })
    }

    /// Rules whose current suppression count exceeds the baseline.
    /// Empty means the ratchet passes.
    pub fn regressions(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        for (rule, n) in &current.per_rule {
            let pinned = self
                .per_rule
                .iter()
                .find(|(r, _)| r == rule)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            if *n > pinned {
                out.push(format!(
                    "suppressions for `{rule}` grew {pinned} -> {n} (justify and \
                     `cargo xtask lint --update-baseline`, or fix the hazard)"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let b = Baseline {
            per_rule: vec![
                ("nondeterministic-iteration".into(), 3),
                ("unbounded-retry".into(), 1),
            ],
        };
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 4);
    }

    #[test]
    fn ratchet_flags_growth_only() {
        let pinned = Baseline {
            per_rule: vec![("a".into(), 2), ("b".into(), 1)],
        };
        let shrunk = Baseline {
            per_rule: vec![("a".into(), 1)],
        };
        assert!(pinned.regressions(&shrunk).is_empty());
        let grown = Baseline {
            per_rule: vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)],
        };
        assert_eq!(pinned.regressions(&grown).len(), 2);
    }
}
