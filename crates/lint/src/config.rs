//! Workspace scoping: which files each rule polices, and which files are
//! compiled only under a cargo feature (gated at their `mod` site, so the
//! hygiene rule treats every line as gated).
//!
//! Paths are workspace-relative with forward slashes. Scopes are data, not
//! code, so adding a file to a rule's beat is a one-line change here.

/// Protocol hot paths: message handlers and synchronization machinery.
/// Panic rules (`forbidden-panic`, `undocumented-panic`) police these.
pub const HANDLER_FILES: &[&str] = &[
    "crates/core/src/system.rs",
    "crates/core/src/treadmarks.rs",
    "crates/core/src/aurc.rs",
    "crates/core/src/sync.rs",
    "crates/core/src/transport.rs",
    "crates/net/src/lib.rs",
    "crates/net/src/router.rs",
    "crates/net/src/topology.rs",
];

/// Data-plane files where unchecked indexing is additionally policed.
pub const INDEX_FILES: &[&str] = &[
    "crates/core/src/diff.rs",
    "crates/core/src/bitvec.rs",
    "crates/core/src/page.rs",
];

/// Crates whose sources are scanned for truncating cycle casts.
pub const CYCLE_CAST_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/net/src",
    "crates/mem/src",
    "crates/stats/src",
    "crates/obs/src",
    "crates/svc/src",
];

/// Crates that must never read wall-clock time: the simulation and
/// everything that post-processes its (deterministic) output.
pub const SIMULATED_TIME_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/obs/src",
    "crates/fault/src",
    "crates/verify/src",
    "crates/svc/src",
];

/// Directory whose binaries must route every simulation through the
/// experiment engine.
pub const ENGINE_ONLY_DIR: &str = "crates/bench/src/bin";

/// Files whose `obs_edge(` emission sites must anchor to a recorded span.
pub const EDGE_EMISSION_FILES: &[&str] = &[
    "crates/core/src/system.rs",
    "crates/core/src/sync.rs",
    "crates/core/src/treadmarks.rs",
    "crates/core/src/aurc.rs",
];

/// Directories scanned for uncapped retry/backoff sites.
pub const RETRY_DIRS: &[&str] = &["crates/core/src", "crates/net/src"];

/// How far (in lines, both directions) a retry/backoff site may be from the
/// `MAX_`-prefixed cap constant that bounds it.
pub const RETRY_CAP_WINDOW: u32 = 12;

/// Crates whose output feeds checksums, metrics JSON, bench cache keys or
/// committed golden files — iterating a hash-order collection there is a
/// reproducibility hazard (`nondeterministic-iteration`).
pub const DETERMINISTIC_OUTPUT_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/net/src",
    "crates/mem/src",
    "crates/stats/src",
    "crates/obs/src",
    "crates/apps/src",
    "crates/verify/src",
    "crates/fault/src",
    "crates/bench/src",
    "crates/lint/src",
    "crates/prof/src",
    "crates/svc/src",
];

/// Crates policed by `feature-hook-hygiene`. `crates/prof/src` is here for
/// its `prof_*` accessors, not `SIMULATED_TIME_DIRS`: reading the wall clock
/// is that crate's whole job.
pub const HOOK_HYGIENE_DIRS: &[&str] = &["crates/core/src", "crates/net/src", "crates/prof/src"];

/// Feature-carrying fields: consulting `self.<field>` outside a matching
/// `#[cfg(feature = …)]` region breaks the zero-cost hook guarantee.
pub const HOOK_FIELDS: &[(&str, &str)] = &[
    ("obs", "obs"),
    ("ts", "obs"),
    ("observer", "verify"),
    ("drop_notice_armed", "verify"),
    ("fault", "fault"),
    ("silent_frame_loss_armed", "fault"),
    ("plan", "fault"),
    ("prof", "prof"),
];

/// Hook-definition name prefixes: a `fn <prefix>*` definition in a hygiene
/// dir must sit behind its feature's cfg gate (either polarity — the real
/// implementation or its zero-cost stub).
pub const HOOK_FN_PREFIXES: &[(&str, &str)] = &[("obs_", "obs"), ("prof_", "prof"), ("ts_", "obs")];

/// Files compiled only under a feature via a `#[cfg(feature = …)] mod` in
/// their parent — every line counts as gated for that feature.
pub const WHOLE_FILE_GATES: &[(&str, &str)] = &[("crates/core/src/transport.rs", "fault")];

/// Crates doing window-boundary math over the time-series log: dividing by
/// the window width there needs a `// window:` boundary justification
/// (`window-boundary-div`).
pub const WINDOW_MATH_DIRS: &[&str] = &["crates/obs/src"];

/// Crates whose per-event cost multiplies by the cluster size: linear
/// container scans (`Vec::remove`, `retain`) there need a `// linear:`
/// bound (`linear-scan-in-hot-path`).
pub const HOT_SCAN_DIRS: &[&str] = &["crates/sim/src", "crates/net/src"];

/// Crates where saturating/wrapping arithmetic is overwhelmingly
/// cycle-counter math and must justify overflow behavior.
pub const CYCLE_ARITH_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/net/src",
    "crates/mem/src",
    "crates/obs/src",
    "crates/svc/src",
];

/// The open-loop service crate: arrival-time arithmetic there must cite
/// simulated-`Cycles` types or a `// clock:` justification
/// (`open-loop-clock`) — response times are cycle deltas, never host time.
pub const OPEN_LOOP_DIRS: &[&str] = &["crates/svc/src"];

/// True when `rel` lives under any of `dirs`.
pub fn in_dirs(rel: &str, dirs: &[&str]) -> bool {
    dirs.iter()
        .any(|d| rel.strip_prefix(d).is_some_and(|r| r.starts_with('/')))
}

/// The whole-file feature gate for `rel`, if any.
pub fn whole_file_gate(rel: &str) -> Option<&'static str> {
    WHOLE_FILE_GATES
        .iter()
        .find(|(f, _)| *f == rel)
        .map(|&(_, feat)| feat)
}
