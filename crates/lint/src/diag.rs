//! Structured diagnostics and the deterministic report.
//!
//! Every finding carries a `file:line:col`, a stable rule ID, a message and
//! the offending source snippet. Reports sort all entries by
//! `(file, line, col, rule)` before rendering, and the JSON writer emits
//! keys in a fixed order with no timestamps, so two runs over the same tree
//! produce byte-identical output — the same discipline the rest of the
//! workspace applies to metrics and bench files.

use std::fmt::Write as _;

/// One unsuppressed lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// Stable rule ID from the registry.
    pub rule: &'static str,
    /// Human explanation of the hazard.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A finding that an inline `lint: allow` comment silenced, retained so the
/// baseline ratchet can count (and bound) the suppression debt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the silenced finding.
    pub line: u32,
    /// Rule that would have fired.
    pub rule: &'static str,
    /// The justification given after `--` in the suppression comment.
    pub reason: String,
}

/// The full outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub findings: Vec<Diagnostic>,
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned (stable across reruns of the same tree).
    pub files_scanned: usize,
}

impl Report {
    /// Sorts both lists into the canonical order; call before rendering.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        self.findings.dedup();
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed.dedup();
    }

    /// Suppression count per rule ID, in rule-ID order.
    pub fn suppressed_by_rule(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        for s in &self.suppressed {
            match out.iter_mut().find(|(r, _)| *r == s.rule) {
                Some((_, n)) => *n += 1,
                None => out.push((s.rule, 1)),
            }
        }
        out.sort_by_key(|&(r, _)| r);
        out
    }

    /// Byte-deterministic JSON rendering (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"format\": 1,\n  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \
                 \"message\": {}, \"snippet\": {}}}",
                json_str(&d.file),
                d.line,
                d.col,
                json_str(d.rule),
                json_str(&d.message),
                json_str(&d.snippet)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"suppressed\": [");
        for (i, d) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.reason)
            );
        }
        if !self.suppressed.is_empty() {
            s.push_str("\n  ");
        }
        let _ = write!(
            s,
            "],\n  \"summary\": {{\"files\": {}, \"findings\": {}, \"suppressed\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        );
        s
    }

    /// Human rendering for terminal output.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for d in &self.findings {
            let _ = writeln!(
                s,
                "{}:{}:{}: [{}] {}\n    {}",
                d.file, d.line, d.col, d.rule, d.message, d.snippet
            );
        }
        let _ = writeln!(
            s,
            "ncp2-lint: {} file(s), {} finding(s), {} suppression(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        );
        s
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
