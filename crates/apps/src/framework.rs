//! Workload framework: typed shared-memory access, shared-address
//! allocation, and the harness that runs a workload under a protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ncp2_core::{Protocol, RunResult, Simulation};
use ncp2_sim::{Cycles, ProcOp, ProcPort, SvcClass, SvcOp, SysParams};

/// A workload from the paper's application suite.
///
/// Implementations must be deterministic: the same configuration must issue
/// the same reference stream and produce the same checksum on any processor
/// count (see the crate docs for the fixed-point / fixed-order conventions).
pub trait Workload: Send + Sync + 'static {
    /// Display name as used in the paper's figures ("TSP", "Water", ...).
    fn name(&self) -> &'static str;

    /// The per-processor program. Runs on every simulated processor;
    /// returns this processor's checksum contribution (by convention only
    /// processor 0 reads the final state and returns non-zero, so checksums
    /// are independent of the processor count).
    fn run(&self, ctx: &mut Ctx<'_>) -> u64;

    /// Shared address ranges with *intentional* benign races, exempted from
    /// happens-before race detection. The canonical case is TSP's
    /// branch-and-bound bound, re-read optimistically outside its lock: a
    /// stale read only weakens pruning, never correctness. Empty for the
    /// (default) properly-synchronized workloads.
    fn racy_ranges(&self) -> Vec<std::ops::Range<u64>> {
        Vec::new()
    }
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        self.as_ref().run(ctx)
    }

    fn racy_ranges(&self) -> Vec<std::ops::Range<u64>> {
        self.as_ref().racy_ranges()
    }
}

/// Bump allocator for laying out the shared address space **before** the
/// simulation starts (all processors compute the same layout).
///
/// ```
/// use ncp2_apps::Alloc;
/// let mut a = Alloc::new();
/// let x = a.array_u32(100);     // 400 bytes, 8-aligned
/// let y = a.page_aligned_array_f64(10);
/// assert_eq!(x % 8, 0);
/// assert_eq!(y % 4096, 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Alloc {
    next: u64,
}

impl Alloc {
    /// Starts allocating at address zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes` with the given alignment; returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn bytes(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = self.next.div_ceil(align) * align;
        self.next = base + bytes;
        base
    }

    /// An 8-aligned array of `n` u32 values.
    pub fn array_u32(&mut self, n: u64) -> u64 {
        self.bytes(4 * n, 8)
    }

    /// An 8-aligned array of `n` u64/f64 values.
    pub fn array_u64(&mut self, n: u64) -> u64 {
        self.bytes(8 * n, 8)
    }

    /// A page-aligned array of `n` u32 values (avoids cross-region false
    /// sharing where the original allocator would have).
    pub fn page_aligned_array_u32(&mut self, n: u64) -> u64 {
        self.bytes(4 * n, 4096)
    }

    /// A page-aligned array of `n` u64/f64 values.
    pub fn page_aligned_array_f64(&mut self, n: u64) -> u64 {
        self.bytes(8 * n, 4096)
    }

    /// Total bytes laid out so far.
    pub fn used(&self) -> u64 {
        self.next
    }
}

/// Per-processor execution context handed to [`Workload::run`].
///
/// Wraps the raw [`ProcPort`] with typed accessors. Every method is one or
/// more simulated operations; nothing here touches real shared state.
pub struct Ctx<'a> {
    port: &'a ProcPort,
    /// This processor's id.
    pub pid: usize,
    /// Total simulated processors.
    pub nprocs: usize,
}

impl<'a> Ctx<'a> {
    /// Wraps a port (used by the harness; workload code receives this).
    pub fn new(port: &'a ProcPort, pid: usize, nprocs: usize) -> Self {
        Ctx { port, pid, nprocs }
    }

    /// Burns `cycles` of local computation (private data + ALU work).
    pub fn compute(&self, cycles: Cycles) {
        if cycles > 0 {
            self.port.call(ProcOp::Compute(cycles));
        }
    }

    /// Reads a shared u32.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.port.call(ProcOp::Read { addr, bytes: 4 }).value() as u32
    }

    /// Writes a shared u32.
    pub fn write_u32(&self, addr: u64, v: u32) {
        self.port.call(ProcOp::Write {
            addr,
            bytes: 4,
            value: v as u64,
        });
    }

    /// Reads a shared u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.port.call(ProcOp::Read { addr, bytes: 8 }).value()
    }

    /// Writes a shared u64.
    pub fn write_u64(&self, addr: u64, v: u64) {
        self.port.call(ProcOp::Write {
            addr,
            bytes: 8,
            value: v,
        });
    }

    /// Reads a shared i64 (fixed-point convention).
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes a shared i64.
    pub fn write_i64(&self, addr: u64, v: i64) {
        self.write_u64(addr, v as u64);
    }

    /// Reads a shared f64 (bit pattern in a u64 cell).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a shared f64.
    pub fn write_f64(&self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Acquires a DSM lock.
    pub fn lock(&self, id: u32) {
        self.port.call(ProcOp::Lock(id));
    }

    /// Releases a DSM lock.
    pub fn unlock(&self, id: u32) {
        self.port.call(ProcOp::Unlock(id));
    }

    /// Global barrier (all processors must call it the same number of
    /// times, in the same program order).
    pub fn barrier(&self) {
        self.port.call(ProcOp::Barrier(0));
    }

    /// Reads this processor's current simulated clock (zero simulated
    /// cost). The open-loop service workload uses it to compute idle gaps
    /// and per-request response times in simulated cycles.
    pub fn now(&self) -> Cycles {
        self.port.call(ProcOp::Svc(SvcOp::Now)).value()
    }

    /// Marks a service-request dequeue; `depth` is this node's backlog
    /// (arrived, not yet served) after the dequeue. Zero simulated cost;
    /// feeds the `svc_queue_depth` time-series gauge and the trace.
    pub fn svc_dequeue(&self, depth: u64) {
        self.port.call(ProcOp::Svc(SvcOp::Dequeue { depth }));
    }

    /// Marks a service-request completion with its open-loop response time
    /// (completion − arrival, queueing included). Zero simulated cost;
    /// feeds the run's response-time histogram.
    pub fn svc_reply(&self, class: SvcClass, response: Cycles) {
        self.port
            .call(ProcOp::Svc(SvcOp::Reply { class, response }));
    }

    /// The contiguous block `[lo, hi)` of `total` items owned by this
    /// processor under a block partition.
    pub fn block_range(&self, total: u64) -> (u64, u64) {
        let per = total.div_ceil(self.nprocs as u64);
        let lo = (self.pid as u64 * per).min(total);
        let hi = ((self.pid as u64 + 1) * per).min(total);
        (lo, hi)
    }
}

/// Runs `app` under `protocol` on the machine described by `params` and
/// returns the run statistics (with the workload checksum filled in).
pub fn run_app<W: Workload>(params: SysParams, protocol: Protocol, app: W) -> RunResult {
    run_app_with(params, protocol, app, |_| {})
}

/// Like [`run_app`], but lets `configure` adjust the freshly built
/// [`Simulation`] before it runs — e.g. to attach a `verify` observer or arm
/// a fault-injection hook.
pub fn run_app_with<W: Workload>(
    params: SysParams,
    protocol: Protocol,
    app: W,
    configure: impl FnOnce(&mut Simulation),
) -> RunResult {
    let nprocs = params.nprocs;
    let app = Arc::new(app);
    let checksum = Arc::new(AtomicU64::new(0));
    let mut sim = Simulation::new(params, protocol);
    configure(&mut sim);
    let app2 = Arc::clone(&app);
    let ck = Arc::clone(&checksum);
    let mut result = sim.run(move |pid, port| {
        let mut ctx = Ctx::new(&port, pid, nprocs);
        let v = app2.run(&mut ctx);
        ck.fetch_xor(v, Ordering::SeqCst);
        port.call(ProcOp::Finish);
    });
    result.checksum = checksum.load(Ordering::SeqCst);
    result
}

/// Runs `app` on a single processor with the DSM disabled — the paper's
/// sequential baseline for speedup curves and checksum validation.
pub fn sequential_baseline<W: Workload>(params: &SysParams, app: W) -> RunResult {
    let seq = params.clone().with_nprocs(1);
    run_app(seq, Protocol::TreadMarks(ncp2_core::OverlapMode::Base), app)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_order() {
        let mut a = Alloc::new();
        let x = a.bytes(10, 8);
        let y = a.bytes(10, 8);
        assert_eq!(x, 0);
        assert_eq!(y, 16);
        let z = a.bytes(1, 4096);
        assert_eq!(z, 4096);
        assert_eq!(a.used(), 4097);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn alloc_rejects_bad_alignment() {
        Alloc::new().bytes(8, 3);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for total in [0u64, 1, 7, 64, 100] {
            for n in [1usize, 3, 4, 16] {
                let mut covered = 0;
                for pid in 0..n {
                    let per = total.div_ceil(n as u64);
                    let lo = (pid as u64 * per).min(total);
                    let hi = ((pid as u64 + 1) * per).min(total);
                    covered += hi - lo;
                }
                assert_eq!(covered, total, "partition of {total} over {n}");
            }
        }
    }

    #[test]
    fn trivial_workload_round_trips_checksum() {
        struct W;
        impl Workload for W {
            fn name(&self) -> &'static str {
                "W"
            }
            fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
                if ctx.pid == 0 {
                    ctx.write_u64(0, 0xDEAD);
                }
                ctx.barrier();
                let v = ctx.read_u64(0);
                ctx.barrier();
                if ctx.pid == 0 {
                    v
                } else {
                    assert_eq!(v, 0xDEAD);
                    0
                }
            }
        }
        let r = run_app(
            SysParams::default().with_nprocs(4),
            Protocol::TreadMarks(ncp2_core::OverlapMode::Base),
            W,
        );
        assert_eq!(r.checksum, 0xDEAD);
        let seq = sequential_baseline(&SysParams::default(), W);
        assert_eq!(seq.checksum, 0xDEAD);
        assert_eq!(seq.nprocs, 1);
    }
}
