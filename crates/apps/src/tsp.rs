//! TSP — branch-and-bound minimum-cost tour (the TreadMarks demo app).
//!
//! A task queue of tour prefixes is generated up front; processors pop
//! prefixes under a queue lock and solve each by depth-first search with
//! pruning against a shared best bound (updated under its own lock, read
//! optimistically during search). This is the paper's "reasonably good
//! speedup" application: coarse tasks, tiny shared state, migratory locks.

use crate::framework::{Alloc, Ctx, Workload};

/// Lock protecting the task queue head.
const QUEUE_LOCK: u32 = 0;
/// Lock protecting the best-tour bound.
const BEST_LOCK: u32 = 1;
/// Cycles of local work per DFS tree node (distance lookups, bound math).
const NODE_COMPUTE: u64 = 420;
/// DFS nodes between optimistic re-reads of the shared bound.
const BOUND_CHECK_STRIDE: u64 = 32;

/// TSP configuration.
#[derive(Debug, Clone)]
pub struct Tsp {
    /// Number of cities.
    pub cities: usize,
    /// Tour-prefix length used to generate the task queue.
    pub prefix_depth: usize,
    /// Workload RNG seed (city coordinates).
    pub seed: u64,
}

impl Default for Tsp {
    /// Scaled-down default: 10 cities (the paper solves 18).
    fn default() -> Self {
        Tsp {
            cities: 11,
            prefix_depth: 3,
            seed: 0x7597,
        }
    }
}

impl Tsp {
    /// The paper's problem size: an 18-city tour.
    pub fn paper() -> Self {
        Tsp {
            cities: 18,
            prefix_depth: 3,
            ..Self::default()
        }
    }

    /// Deterministic integer distance matrix from random plane coordinates.
    fn distances(&self) -> Vec<Vec<u32>> {
        let pts = crate::rng::plane_points(&mut crate::rng::seeded(self.seed), self.cities, 1000.0);
        (0..self.cities)
            .map(|i| {
                (0..self.cities)
                    .map(|j| {
                        let dx = pts[i].0 - pts[j].0;
                        let dy = pts[i].1 - pts[j].1;
                        (dx * dx + dy * dy).sqrt() as u32
                    })
                    .collect()
            })
            .collect()
    }

    /// Enumerates all tour prefixes of length `prefix_depth + 1` starting at
    /// city 0 (the task list; identical on every processor).
    fn tasks(&self) -> Vec<Vec<u8>> {
        let mut tasks = Vec::new();
        let mut prefix = vec![0u8];
        self.gen_tasks(&mut prefix, &mut tasks);
        tasks
    }

    fn gen_tasks(&self, prefix: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if prefix.len() == self.prefix_depth + 1 {
            out.push(prefix.clone());
            return;
        }
        for c in 1..self.cities as u8 {
            if !prefix.contains(&c) {
                prefix.push(c);
                self.gen_tasks(prefix, out);
                prefix.pop();
            }
        }
    }

    /// Reference sequential solution (for tests).
    pub fn solve_reference(&self) -> u32 {
        let dist = self.distances();
        let mut best = u32::MAX;
        let mut visited = vec![false; self.cities];
        visited[0] = true;
        let mut order = vec![0u8];
        Self::dfs_ref(&dist, &mut visited, &mut order, 0, &mut best);
        best
    }

    fn dfs_ref(
        dist: &[Vec<u32>],
        visited: &mut [bool],
        order: &mut Vec<u8>,
        cost: u32,
        best: &mut u32,
    ) {
        let n = dist.len();
        if cost >= *best {
            return;
        }
        if order.len() == n {
            let total = cost + dist[*order.last().unwrap() as usize][0];
            *best = (*best).min(total);
            return;
        }
        for c in 1..n {
            if !visited[c] {
                let last = *order.last().unwrap() as usize;
                visited[c] = true;
                order.push(c as u8);
                Self::dfs_ref(dist, visited, order, cost + dist[last][c], best);
                order.pop();
                visited[c] = false;
            }
        }
    }
}

/// Shared layout.
struct Layout {
    best: u64,
    queue_head: u64,
    tasks: u64,
    task_stride: u64,
}

impl Layout {
    fn new(cities: usize, ntasks: usize) -> Self {
        let mut a = Alloc::new();
        let best = a.array_u32(1);
        let queue_head = a.array_u32(1);
        let task_stride = (cities as u64 + 2) * 4;
        let tasks = a.bytes(task_stride * ntasks as u64, 4096);
        Layout {
            best,
            queue_head,
            tasks,
            task_stride,
        }
    }

    fn task_addr(&self, idx: u64) -> u64 {
        self.tasks + idx * self.task_stride
    }
}

impl Workload for Tsp {
    fn name(&self) -> &'static str {
        "TSP"
    }

    /// The shared bound is re-read optimistically during the DFS (the
    /// TreadMarks TSP's deliberate benign race): stale values only weaken
    /// pruning — the bound decreases monotonically and all updates hold
    /// `BEST_LOCK` — so the word is exempt from race detection.
    fn racy_ranges(&self) -> Vec<std::ops::Range<u64>> {
        let lay = Layout::new(self.cities, self.tasks().len());
        let best = lay.best..lay.best + 4;
        vec![best]
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        let dist = self.distances();
        let tasks = self.tasks();
        let lay = Layout::new(self.cities, tasks.len());
        if ctx.pid == 0 {
            ctx.write_u32(lay.best, u32::MAX);
            ctx.write_u32(lay.queue_head, 0);
            for (i, t) in tasks.iter().enumerate() {
                let base = lay.task_addr(i as u64);
                ctx.write_u32(base, t.len() as u32);
                for (j, &c) in t.iter().enumerate() {
                    ctx.write_u32(base + 4 * (1 + j as u64), c as u32);
                }
            }
        }
        ctx.barrier();
        loop {
            // Pop one prefix task.
            ctx.lock(QUEUE_LOCK);
            let head = ctx.read_u32(lay.queue_head);
            let got = if (head as usize) < tasks.len() {
                ctx.write_u32(lay.queue_head, head + 1);
                true
            } else {
                false
            };
            ctx.unlock(QUEUE_LOCK);
            if !got {
                break;
            }
            // Read the prefix back from shared memory (it migrated here).
            let base = lay.task_addr(head as u64);
            let len = ctx.read_u32(base) as usize;
            let mut order: Vec<u8> = (0..len)
                .map(|j| ctx.read_u32(base + 4 * (1 + j as u64)) as u8)
                .collect();
            let mut visited = vec![false; self.cities];
            let mut cost = 0u32;
            for w in order.windows(2) {
                cost += dist[w[0] as usize][w[1] as usize];
            }
            for &c in &order {
                visited[c as usize] = true;
            }
            self.dfs_shared(ctx, &lay, &dist, &mut visited, &mut order, cost);
        }
        ctx.barrier();
        if ctx.pid == 0 {
            ctx.read_u32(lay.best) as u64
        } else {
            0
        }
    }
}

impl Tsp {
    /// DFS with pruning against the shared bound. Compute cycles are
    /// batched; the bound is re-read optimistically every few nodes.
    fn dfs_shared(
        &self,
        ctx: &Ctx<'_>,
        lay: &Layout,
        dist: &[Vec<u32>],
        visited: &mut [bool],
        order: &mut Vec<u8>,
        cost: u32,
    ) {
        let mut bound = ctx.read_u32(lay.best);
        let mut nodes_since_check = 0u64;
        let mut pending_compute = 0u64;
        self.dfs_inner(
            ctx,
            lay,
            dist,
            visited,
            order,
            cost,
            &mut bound,
            &mut nodes_since_check,
            &mut pending_compute,
        );
        ctx.compute(pending_compute);
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_inner(
        &self,
        ctx: &Ctx<'_>,
        lay: &Layout,
        dist: &[Vec<u32>],
        visited: &mut [bool],
        order: &mut Vec<u8>,
        cost: u32,
        bound: &mut u32,
        since_check: &mut u64,
        pending: &mut u64,
    ) {
        *pending += NODE_COMPUTE;
        *since_check += 1;
        if *since_check >= BOUND_CHECK_STRIDE {
            *since_check = 0;
            ctx.compute(std::mem::take(pending));
            *bound = ctx.read_u32(lay.best);
        }
        if cost >= *bound {
            return;
        }
        let n = self.cities;
        if order.len() == n {
            let total = cost + dist[*order.last().expect("tour") as usize][0];
            if total < *bound {
                ctx.compute(std::mem::take(pending));
                ctx.lock(BEST_LOCK);
                let cur = ctx.read_u32(lay.best);
                if total < cur {
                    ctx.write_u32(lay.best, total);
                }
                ctx.unlock(BEST_LOCK);
                *bound = (*bound).min(total);
            }
            return;
        }
        for c in 1..n {
            if !visited[c] {
                let last = *order.last().expect("tour") as usize;
                visited[c] = true;
                order.push(c as u8);
                self.dfs_inner(
                    ctx,
                    lay,
                    dist,
                    visited,
                    order,
                    cost + dist[last][c],
                    bound,
                    since_check,
                    pending,
                );
                order.pop();
                visited[c] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_generation_covers_prefixes() {
        let tsp = Tsp {
            cities: 6,
            prefix_depth: 2,
            seed: 1,
        };
        let tasks = tsp.tasks();
        // 5 * 4 length-3 prefixes starting at city 0.
        assert_eq!(tasks.len(), 20);
        assert!(tasks.iter().all(|t| t.len() == 3 && t[0] == 0));
        let mut uniq = tasks.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 20);
    }

    #[test]
    fn distances_are_symmetric_with_zero_diagonal() {
        let tsp = Tsp::default();
        let d = tsp.distances();
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, d[j][i]);
            }
        }
    }

    #[test]
    fn reference_solver_finds_a_plausible_tour() {
        let tsp = Tsp {
            cities: 7,
            prefix_depth: 2,
            seed: 3,
        };
        let best = tsp.solve_reference();
        assert!(best > 0 && best < u32::MAX);
        // Greedy nearest-neighbour is an upper bound.
        let d = tsp.distances();
        let mut cur = 0usize;
        let mut seen = [false; 7];
        seen[0] = true;
        let mut greedy = 0u32;
        for _ in 1..7 {
            let next = (0..7)
                .filter(|&j| !seen[j])
                .min_by_key(|&j| d[cur][j])
                .unwrap();
            greedy += d[cur][next];
            seen[next] = true;
            cur = next;
        }
        greedy += d[cur][0];
        assert!(best <= greedy);
    }
}
