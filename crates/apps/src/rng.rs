//! Shared seeded-RNG helpers for workload input generation.
//!
//! Every workload used to roll its own seeding and sampling idioms on top
//! of [`SimRng`] (TSP's plane points, Radix's masked keys, Em3d's salted
//! per-side generators, Barnes/Water's centered fixed-point coordinates).
//! This module collects them so the idioms are written — and tested for
//! determinism — exactly once. The helpers consume RNG draws in exactly
//! the sequence the apps always did, so extracting them changed no
//! checksum.
//!
//! The open-loop service workload (`ncp2-svc` + `SvcWorkload`) also builds
//! its per-request keyspace sampler from [`salted`].

use ncp2_sim::SimRng;

/// A generator seeded directly from a workload seed (the common case).
pub fn seeded(seed: u64) -> SimRng {
    SimRng::new(seed)
}

/// A generator whose stream is independent per `salt` for one `seed` —
/// Em3d's per-graph-side idiom, and the service workload's per-request
/// sampler.
pub fn salted(seed: u64, salt: u64) -> SimRng {
    SimRng::new(seed ^ salt)
}

/// `n` uniform points in the `[0, scale) × [0, scale)` plane (TSP's city
/// coordinates). Consumes exactly `2n` draws.
pub fn plane_points(rng: &mut SimRng, n: usize, scale: f64) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.next_f64() * scale, rng.next_f64() * scale))
        .collect()
}

/// `n` uniform keys masked to the low bits in `mask` (Radix's input).
/// Consumes exactly `n` draws.
pub fn masked_keys(rng: &mut SimRng, n: usize, mask: u32) -> Vec<u32> {
    (0..n).map(|_| rng.next_u64() as u32 & mask).collect()
}

/// One fixed-point coordinate centered on zero: uniform in
/// `[-half, half) × fx` (Barnes' body positions with `half = 1024`,
/// Water's molecule positions with `half = 32`). Consumes one draw.
pub fn centered_fx(rng: &mut SimRng, half: u64, fx: i64) -> i64 {
    (rng.next_below(2 * half) as i64 - half as i64) * fx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same seed ⇒ same outputs, for every helper; and the helpers consume
    /// draws in the documented sequence (so they are drop-in replacements
    /// for the per-app idioms they were extracted from).
    #[test]
    fn helpers_are_deterministic() {
        let a = plane_points(&mut seeded(7), 10, 1000.0);
        let b = plane_points(&mut seeded(7), 10, 1000.0);
        assert_eq!(a, b);

        let k1 = masked_keys(&mut seeded(9), 100, 0xFFFF);
        let k2 = masked_keys(&mut seeded(9), 100, 0xFFFF);
        assert_eq!(k1, k2);
        assert!(k1.iter().all(|&k| k <= 0xFFFF));

        let c1 = centered_fx(&mut seeded(3), 1024, 1 << 16);
        let c2 = centered_fx(&mut seeded(3), 1024, 1 << 16);
        assert_eq!(c1, c2);
        assert!((-1024 * (1 << 16)..1024 * (1 << 16)).contains(&c1));

        // salted(seed, salt) differs across salts but repeats per salt.
        assert_eq!(salted(5, 1).next_u64(), salted(5, 1).next_u64());
        assert_ne!(salted(5, 1).next_u64(), salted(5, 2).next_u64());
    }

    /// The extracted helpers replay the exact draw sequences the apps
    /// used to roll inline: `plane_points` = 2 `next_f64` per point,
    /// `masked_keys` = 1 `next_u64` per key, `centered_fx` = 1
    /// `next_below(2·half)`.
    #[test]
    fn helpers_preserve_draw_sequences() {
        let mut r1 = seeded(42);
        let pts = plane_points(&mut seeded(42), 3, 500.0);
        for p in pts {
            assert_eq!(p.0, r1.next_f64() * 500.0);
            assert_eq!(p.1, r1.next_f64() * 500.0);
        }

        let mut r2 = seeded(43);
        for k in masked_keys(&mut seeded(43), 5, 0xFF) {
            assert_eq!(k, r2.next_u64() as u32 & 0xFF);
        }

        let mut r3 = seeded(44);
        assert_eq!(
            centered_fx(&mut seeded(44), 32, 100),
            (r3.next_below(64) as i64 - 32) * 100
        );
    }
}
