//! Radix — iterative integer radix sort (SPLASH-2 kernel).
//!
//! One iteration per digit: local histogramming of the owned key block,
//! a barrier, a read of all processors' histogram rows to compute write
//! offsets, then the permutation phase that scatters keys across the whole
//! destination array — the page-grain false-sharing firehose that gives
//! Radix its >20% diff overhead in the paper.

use crate::framework::{Alloc, Ctx, Workload};

/// Cycles of local work per key in the histogram/permutation loops.
const KEY_COMPUTE: u64 = 200;

/// Radix sort configuration.
#[derive(Debug, Clone)]
pub struct Radix {
    /// Number of keys.
    pub keys: usize,
    /// Radix (buckets per digit); must be a power of two.
    pub radix: usize,
    /// Number of digit passes (`radix ^ passes` must cover the key range).
    pub passes: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for Radix {
    /// Scaled-down default: 16 K keys of 24 bits (the paper sorts 1 M).
    fn default() -> Self {
        Radix {
            keys: 16 * 1024,
            radix: 256,
            passes: 3,
            seed: 0x5ad1,
        }
    }
}

impl Radix {
    /// The paper's problem size: 1 M keys.
    pub fn paper() -> Self {
        Radix {
            keys: 1 << 20,
            radix: 1024,
            passes: 3,
            ..Self::default()
        }
    }

    fn key_bits(&self) -> u32 {
        (self.radix.trailing_zeros()) * self.passes as u32
    }

    /// The deterministic input keys.
    fn input(&self) -> Vec<u32> {
        let mask = ((1u64 << self.key_bits()) - 1) as u32;
        crate::rng::masked_keys(&mut crate::rng::seeded(self.seed), self.keys, mask)
    }
}

struct Layout {
    arrays: [u64; 2],
    hist: u64,
    radix: u64,
}

impl Layout {
    fn new(keys: usize, radix: usize, nprocs: usize) -> Self {
        let mut a = Alloc::new();
        let a0 = a.page_aligned_array_u32(keys as u64);
        let a1 = a.page_aligned_array_u32(keys as u64);
        let hist = a.page_aligned_array_u32((radix * nprocs) as u64);
        Layout {
            arrays: [a0, a1],
            hist,
            radix: radix as u64,
        }
    }

    fn hist_cell(&self, proc_: usize, digit: u64) -> u64 {
        self.hist + 4 * (proc_ as u64 * self.radix + digit)
    }
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "Radix"
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        assert!(self.radix.is_power_of_two(), "radix must be a power of two");
        let lay = Layout::new(self.keys, self.radix, ctx.nprocs);
        let input = self.input();
        if ctx.pid == 0 {
            for (i, &k) in input.iter().enumerate() {
                ctx.write_u32(lay.arrays[0] + 4 * i as u64, k);
            }
        }
        ctx.barrier();
        let (lo, hi) = ctx.block_range(self.keys as u64);
        let digit_bits = self.radix.trailing_zeros();
        for pass in 0..self.passes {
            let src = lay.arrays[pass % 2];
            let dst = lay.arrays[(pass + 1) % 2];
            let shift = pass as u32 * digit_bits;
            // Phase 1: local histogram of the owned block.
            let mut counts = vec![0u32; self.radix];
            let mut local_keys = Vec::with_capacity((hi - lo) as usize);
            for i in lo..hi {
                let k = ctx.read_u32(src + 4 * i);
                counts[((k >> shift) as usize) & (self.radix - 1)] += 1;
                local_keys.push(k);
            }
            ctx.compute((hi - lo) * KEY_COMPUTE);
            for (d, &c) in counts.iter().enumerate() {
                ctx.write_u32(lay.hist_cell(ctx.pid, d as u64), c);
            }
            ctx.barrier();
            // Phase 2: global offsets — digit-major scan over all rows.
            let mut offsets = vec![0u64; self.radix];
            let mut running = 0u64;
            for d in 0..self.radix as u64 {
                for p in 0..ctx.nprocs {
                    let c = ctx.read_u32(lay.hist_cell(p, d)) as u64;
                    if p == ctx.pid {
                        offsets[d as usize] = running;
                    }
                    running += c;
                }
            }
            ctx.compute(self.radix as u64 * ctx.nprocs as u64 * 2);
            // Phase 3: permutation — scattered writes over the whole array.
            for &k in &local_keys {
                let d = ((k >> shift) as usize) & (self.radix - 1);
                ctx.write_u32(dst + 4 * offsets[d], k);
                offsets[d] += 1;
            }
            ctx.compute((hi - lo) * KEY_COMPUTE);
            ctx.barrier();
        }
        if ctx.pid == 0 {
            let final_arr = lay.arrays[self.passes % 2];
            let mut ck = 0u64;
            let mut prev = 0u32;
            for i in 0..self.keys as u64 {
                let k = ctx.read_u32(final_arr + 4 * i);
                assert!(k >= prev, "radix output not sorted at {i}");
                prev = k;
                ck = ck.rotate_left(7) ^ k as u64;
            }
            ck
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_is_deterministic_and_bounded() {
        let r = Radix::default();
        let a = r.input();
        let b = r.input();
        assert_eq!(a, b);
        let mask = (1u32 << r.key_bits()) - 1;
        assert!(a.iter().all(|&k| k <= mask));
        assert_eq!(a.len(), r.keys);
    }

    #[test]
    fn layout_keeps_arrays_page_disjoint() {
        let lay = Layout::new(1024, 256, 16);
        assert_eq!(lay.arrays[0] % 4096, 0);
        assert_eq!(lay.arrays[1] % 4096, 0);
        assert!(lay.arrays[1] >= lay.arrays[0] + 4 * 1024);
        assert_eq!(lay.hist_cell(1, 0) - lay.hist_cell(0, 0), 4 * 256);
    }

    #[test]
    fn key_bits_cover_passes() {
        assert_eq!(Radix::default().key_bits(), 24);
        assert_eq!(Radix::paper().key_bits(), 30);
    }
}
