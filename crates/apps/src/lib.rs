//! # ncp2-apps — the six application workloads of the NCP2 study
//!
//! From-scratch Rust implementations of the paper's application suite (§4.2)
//! running against the simulated DSM: **TSP** (branch-and-bound),
//! **Water** (n² molecular dynamics), **Radix** (integer sort),
//! **Barnes** (Barnes-Hut N-body), **Ocean** (grid solver) and **Em3d**
//! (electromagnetic wave propagation on a bipartite graph).
//!
//! Every workload:
//!
//! * issues *all* shared-memory traffic through the simulated machine
//!   ([`Ctx`]), so the sharing pattern — migratory locks, barrier
//!   producer/consumer, page-grain false sharing, boundary exchange — drives
//!   the protocols exactly as in the paper;
//! * is **deterministic**, including a final checksum that is independent of
//!   the processor count, so a 16-node DSM run can be validated bit-for-bit
//!   against a sequential run (shared-memory reductions use fixed-point
//!   integers or fixed reduction orders to keep floating point exact);
//! * has a scaled-down default problem size (simulation-friendly) and the
//!   paper's original size behind `paper()`-style constructors.
//!
//! ```no_run
//! use ncp2_apps::{run_app, Tsp};
//! use ncp2_core::{OverlapMode, Protocol};
//! use ncp2_sim::SysParams;
//!
//! let result = run_app(SysParams::default(), Protocol::TreadMarks(OverlapMode::ID), Tsp::default());
//! println!("TSP: {} cycles, checksum {:#x}", result.total_cycles, result.checksum);
//! ```

pub mod barnes;
pub mod em3d;
pub mod framework;
pub mod ocean;
pub mod radix;
pub mod rng;
pub mod svc;
pub mod tsp;
pub mod water;

pub use barnes::Barnes;
pub use em3d::Em3d;
pub use framework::{run_app, run_app_with, sequential_baseline, Alloc, Ctx, Workload};
pub use ocean::Ocean;
pub use radix::Radix;
pub use svc::Svc;
pub use tsp::Tsp;
pub use water::Water;

/// All six workloads at default (scaled) sizes, in the paper's plotting
/// order, as boxed trait objects.
pub fn default_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Tsp::default()),
        Box::new(Water::default()),
        Box::new(Radix::default()),
        Box::new(Barnes::default()),
        Box::new(Em3d::default()),
        Box::new(Ocean::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_six_applications() {
        let names: Vec<&str> = default_suite().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean"]
        );
    }
}
