//! Ocean — large-scale ocean movement via an iterative grid solver
//! (SPLASH-2). Modeled as Jacobi relaxation on two ping-pong grids with a
//! barrier per sweep: row-block partitioning makes each processor read its
//! neighbours' boundary rows, and with ~8 rows per 4-KB page the boundary
//! pages are heavily write-shared — Ocean is the paper's worst performer
//! (dominated by data-fetch and synchronization time).

use crate::framework::{Alloc, Ctx, Workload};

/// Cycles of local floating-point work per stencil cell.
const CELL_COMPUTE: u64 = 40;

/// Ocean configuration.
#[derive(Debug, Clone)]
pub struct Ocean {
    /// Grid side (including boundary); the paper simulates 258×258.
    pub grid: usize,
    /// Jacobi sweeps.
    pub iters: usize,
}

impl Default for Ocean {
    /// Scaled-down default: a 130×130 grid, 10 sweeps.
    fn default() -> Self {
        Ocean {
            grid: 130,
            iters: 10,
        }
    }
}

impl Ocean {
    /// The paper's problem size: a 258×258 ocean grid.
    pub fn paper() -> Self {
        Ocean {
            grid: 258,
            iters: 12,
        }
    }

    /// Deterministic initial condition.
    fn init_cell(i: u64, j: u64) -> f64 {
        ((i * 37 + j * 101) % 1000) as f64 / 1000.0
    }
}

struct Layout {
    grids: [u64; 2],
    n: u64,
}

impl Layout {
    fn new(grid: usize) -> Self {
        let mut a = Alloc::new();
        let n = grid as u64;
        let g0 = a.page_aligned_array_f64(n * n);
        let g1 = a.page_aligned_array_f64(n * n);
        Layout { grids: [g0, g1], n }
    }

    fn cell(&self, which: usize, i: u64, j: u64) -> u64 {
        self.grids[which] + 8 * (i * self.n + j)
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "Ocean"
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        let n = self.grid as u64;
        let lay = Layout::new(self.grid);
        if ctx.pid == 0 {
            for i in 0..n {
                for j in 0..n {
                    let v = Self::init_cell(i, j);
                    ctx.write_f64(lay.cell(0, i, j), v);
                    ctx.write_f64(lay.cell(1, i, j), v);
                }
            }
        }
        ctx.barrier();
        // Interior rows 1..n-1 are block-partitioned.
        let rows = n - 2;
        let (rlo, rhi) = ctx.block_range(rows);
        let (lo, hi) = (rlo + 1, rhi + 1);
        for sweep in 0..self.iters {
            let src = sweep % 2;
            let dst = (sweep + 1) % 2;
            // Rows touching another processor's block are processed
            // last: their neighbour rows are the remote (invalidated)
            // pages, so deferring them gives acquire-time prefetches the
            // lead time the paper measures (§5.1).
            let mut order: Vec<u64> = ((lo + 1)..hi.saturating_sub(1)).collect();
            if hi > lo {
                order.push(hi - 1);
            }
            if hi > lo + 1 {
                order.push(lo);
            }
            for i in order {
                // Stream the row: read the full 5-point stencil.
                for j in 1..n - 1 {
                    let c = ctx.read_f64(lay.cell(src, i, j));
                    let up = ctx.read_f64(lay.cell(src, i - 1, j));
                    let down = ctx.read_f64(lay.cell(src, i + 1, j));
                    let left = ctx.read_f64(lay.cell(src, i, j - 1));
                    let right = ctx.read_f64(lay.cell(src, i, j + 1));
                    let v = 0.2 * (c + up + down + left + right);
                    ctx.write_f64(lay.cell(dst, i, j), v);
                }
                ctx.compute((n - 2) * CELL_COMPUTE);
            }
            ctx.barrier();
        }
        if ctx.pid == 0 {
            let fin = self.iters % 2;
            let mut ck = 0u64;
            for i in 0..n {
                for j in 0..n {
                    ck = ck.rotate_left(3) ^ ctx.read_f64(lay.cell(fin, i, j)).to_bits();
                }
            }
            ck
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_page_aligned_and_disjoint() {
        let lay = Layout::new(66);
        assert_eq!(lay.grids[0] % 4096, 0);
        assert_eq!(lay.grids[1] % 4096, 0);
        assert!(lay.grids[1] >= lay.grids[0] + 8 * 66 * 66);
        assert_eq!(lay.cell(0, 1, 0) - lay.cell(0, 0, 0), 8 * 66);
    }

    #[test]
    fn init_is_deterministic() {
        assert_eq!(Ocean::init_cell(3, 4), Ocean::init_cell(3, 4));
        assert!(Ocean::init_cell(0, 0) >= 0.0 && Ocean::init_cell(5, 9) < 1.0);
    }

    #[test]
    fn paper_size_matches() {
        assert_eq!(Ocean::paper().grid, 258);
    }
}
