//! Barnes — Barnes-Hut hierarchical N-body (SPLASH-2).
//!
//! Per timestep: (a) a parallel bounding-box reduction; (b) a sequential
//! quadtree build by processor 0 (the serialization other processors wait
//! out at a barrier — Barnes is synchronization-heavy in the paper);
//! (c) a **parallel** centre-of-mass contribution phase where every
//! processor pushes its bodies' mass up the ancestor chain under per-cell
//! locks (short critical sections); (d) parallel force computation by tree
//! traversal — wide read sharing of the freshly built tree pages; and
//! (e) a parallel position update.
//!
//! Positions are fixed point (`i64`, scale 2^16) so the lock-order-free mass
//! accumulation is exactly commutative and checksums are independent of the
//! processor count. The tree is a quadtree over two coordinates — the
//! paper's simulation is 3-D, but tree sharing behaviour is dimension-blind
//! (see DESIGN.md).

use crate::framework::{Alloc, Ctx, Workload};

/// Fixed-point scale (2^16).
const FX: i64 = 1 << 16;
/// First lock id for per-cell mass accumulation.
const CELL_LOCK_BASE: u32 = 40;
/// Number of cell locks.
const CELL_LOCKS: u32 = 32;
/// Cycles of local work per tree node visited during force computation.
const VISIT_COMPUTE: u64 = 3000;
/// Cycles of local work per body insertion step during the build.
const INSERT_COMPUTE: u64 = 450;
/// Sentinel child pointer.
const NIL: u32 = u32::MAX;

/// Barnes-Hut configuration.
#[derive(Debug, Clone)]
pub struct Barnes {
    /// Number of bodies; the paper simulates 4096.
    pub bodies: usize,
    /// Timesteps; the paper runs 4.
    pub steps: usize,
    /// Opening-criterion threshold numerator (theta ≈ thresh/16).
    pub theta_16: i64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for Barnes {
    /// Scaled-down default: 256 bodies, 3 steps.
    fn default() -> Self {
        Barnes {
            bodies: 256,
            steps: 3,
            theta_16: 12,
            seed: 0xBA12,
        }
    }
}

impl Barnes {
    /// The paper's problem size: 4 K bodies, 4 timesteps.
    pub fn paper() -> Self {
        Barnes {
            bodies: 4096,
            steps: 4,
            ..Self::default()
        }
    }

    fn max_nodes(&self) -> u64 {
        8 * self.bodies as u64 + 64
    }
}

/// Shared layout: body arrays + SoA tree node arrays.
struct Layout {
    pos: u64,      // 2 i64 per body
    vel: u64,      // 2 i64 per body
    acc: u64,      // 2 i64 per body
    leaf: u64,     // u32 leaf node id per body
    bbox: u64,     // 4 i64 per processor: minx, miny, maxx, maxy
    root_box: u64, // 4 i64
    node_count: u64,
    n_cx: u64,
    n_cy: u64,
    n_half: u64,
    n_mass: u64,
    n_mx: u64, // mass-weighted x moment
    n_my: u64,
    n_parent: u64,
    n_body: u64,  // body id for leaves, NIL for internal
    n_child: u64, // 4 u32 per node
}

impl Layout {
    fn new(bodies: usize, nprocs: usize, max_nodes: u64) -> Self {
        let mut a = Alloc::new();
        let b = bodies as u64;
        Layout {
            pos: a.page_aligned_array_f64(2 * b),
            vel: a.page_aligned_array_f64(2 * b),
            acc: a.page_aligned_array_f64(2 * b),
            leaf: a.page_aligned_array_u32(b),
            bbox: a.page_aligned_array_f64(4 * nprocs as u64),
            root_box: a.array_u64(4),
            node_count: a.array_u32(2),
            n_cx: a.page_aligned_array_f64(max_nodes),
            n_cy: a.page_aligned_array_f64(max_nodes),
            n_half: a.page_aligned_array_f64(max_nodes),
            n_mass: a.page_aligned_array_f64(max_nodes),
            n_mx: a.page_aligned_array_f64(max_nodes),
            n_my: a.page_aligned_array_f64(max_nodes),
            n_parent: a.page_aligned_array_u32(max_nodes),
            n_body: a.page_aligned_array_u32(max_nodes),
            n_child: a.page_aligned_array_u32(4 * max_nodes),
        }
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "Barnes"
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        let b = self.bodies as u64;
        let lay = Layout::new(self.bodies, ctx.nprocs, self.max_nodes());
        if ctx.pid == 0 {
            let mut rng = crate::rng::seeded(self.seed);
            for i in 0..b {
                ctx.write_i64(
                    lay.pos + 16 * i,
                    crate::rng::centered_fx(&mut rng, 1024, FX),
                );
                ctx.write_i64(
                    lay.pos + 16 * i + 8,
                    crate::rng::centered_fx(&mut rng, 1024, FX),
                );
                ctx.write_i64(lay.vel + 16 * i, 0);
                ctx.write_i64(lay.vel + 16 * i + 8, 0);
            }
        }
        ctx.barrier();
        let (lo, hi) = ctx.block_range(b);
        for _step in 0..self.steps {
            self.bounding_box(ctx, &lay, lo, hi);
            if ctx.pid == 0 {
                self.build_tree(ctx, &lay, b);
            }
            ctx.barrier();
            self.mass_contribution(ctx, &lay, lo, hi);
            ctx.barrier();
            if ctx.pid == 0 {
                self.upward_pass(ctx, &lay);
            }
            ctx.barrier();
            self.forces(ctx, &lay, lo, hi);
            ctx.barrier();
            self.integrate(ctx, &lay, lo, hi);
            ctx.barrier();
        }
        if ctx.pid == 0 {
            let mut ck = 0u64;
            for i in 0..b {
                ck = ck.rotate_left(11) ^ ctx.read_i64(lay.pos + 16 * i) as u64;
                ck = ck.rotate_left(11) ^ ctx.read_i64(lay.pos + 16 * i + 8) as u64;
            }
            ck
        } else {
            0
        }
    }
}

impl Barnes {
    /// Parallel bounding-box reduction: per-processor partials, then a
    /// sequential merge by processor 0.
    fn bounding_box(&self, ctx: &Ctx<'_>, lay: &Layout, lo: u64, hi: u64) {
        let (mut minx, mut miny, mut maxx, mut maxy) = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
        for i in lo..hi {
            let x = ctx.read_i64(lay.pos + 16 * i);
            let y = ctx.read_i64(lay.pos + 16 * i + 8);
            minx = minx.min(x);
            miny = miny.min(y);
            maxx = maxx.max(x);
            maxy = maxy.max(y);
        }
        ctx.compute((hi - lo) * 30);
        let base = lay.bbox + 32 * ctx.pid as u64;
        ctx.write_i64(base, minx);
        ctx.write_i64(base + 8, miny);
        ctx.write_i64(base + 16, maxx);
        ctx.write_i64(base + 24, maxy);
        ctx.barrier();
        if ctx.pid == 0 {
            let (mut gx0, mut gy0, mut gx1, mut gy1) = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
            for p in 0..ctx.nprocs as u64 {
                let base = lay.bbox + 32 * p;
                let x0 = ctx.read_i64(base);
                if x0 == i64::MAX {
                    continue; // processor owned no bodies
                }
                gx0 = gx0.min(x0);
                gy0 = gy0.min(ctx.read_i64(base + 8));
                gx1 = gx1.max(ctx.read_i64(base + 16));
                gy1 = gy1.max(ctx.read_i64(base + 24));
            }
            let cx = (gx0 + gx1) / 2;
            let cy = (gy0 + gy1) / 2;
            let half = (((gx1 - gx0).max(gy1 - gy0)) / 2 + FX).max(FX);
            ctx.write_i64(lay.root_box, cx);
            ctx.write_i64(lay.root_box + 8, cy);
            ctx.write_i64(lay.root_box + 16, half);
        }
        ctx.barrier();
    }

    /// Sequential quadtree build by processor 0 (in shared memory).
    fn build_tree(&self, ctx: &Ctx<'_>, lay: &Layout, bodies: u64) {
        let cx = ctx.read_i64(lay.root_box);
        let cy = ctx.read_i64(lay.root_box + 8);
        let half = ctx.read_i64(lay.root_box + 16);
        // Node 0 is the root.
        self.write_node(ctx, lay, 0, cx, cy, half, NIL);
        let mut count: u32 = 1;
        for body in 0..bodies {
            let bx = ctx.read_i64(lay.pos + 16 * body);
            let by = ctx.read_i64(lay.pos + 16 * body + 8);
            let mut node: u32 = 0;
            loop {
                ctx.compute(INSERT_COMPUTE);
                let ncx = ctx.read_i64(lay.n_cx + 8 * node as u64);
                let ncy = ctx.read_i64(lay.n_cy + 8 * node as u64);
                let nhalf = ctx.read_i64(lay.n_half + 8 * node as u64);
                let resident = ctx.read_u32(lay.n_body + 4 * node as u64);
                let q = Self::quadrant(ncx, ncy, bx, by);
                let child = ctx.read_u32(lay.n_child + 4 * (4 * node as u64 + q));
                if node != 0 && resident != NIL {
                    // Leaf holding another body: split it.
                    let other = resident;
                    ctx.write_u32(lay.n_body + 4 * node as u64, NIL);
                    let ox = ctx.read_i64(lay.pos + 16 * other as u64);
                    let oy = ctx.read_i64(lay.pos + 16 * other as u64 + 8);
                    let oq = Self::quadrant(ncx, ncy, ox, oy);
                    let new = count;
                    count += 1;
                    let (ccx, ccy) = Self::child_center(ncx, ncy, nhalf, oq);
                    self.write_node(ctx, lay, new, ccx, ccy, nhalf / 2, node);
                    ctx.write_u32(lay.n_body + 4 * new as u64, other);
                    ctx.write_u32(lay.leaf + 4 * other as u64, new);
                    ctx.write_u32(lay.n_child + 4 * (4 * node as u64 + oq), new);
                    continue; // retry this body at the same node
                }
                if child == NIL {
                    // Empty slot: new leaf for this body.
                    let new = count;
                    count += 1;
                    let (ccx, ccy) = Self::child_center(ncx, ncy, nhalf, q);
                    self.write_node(ctx, lay, new, ccx, ccy, nhalf / 2, node);
                    ctx.write_u32(lay.n_body + 4 * new as u64, body as u32);
                    ctx.write_u32(lay.leaf + 4 * body, new);
                    ctx.write_u32(lay.n_child + 4 * (4 * node as u64 + q), new);
                    break;
                }
                node = child;
            }
            assert!(
                (count as u64) < self.max_nodes(),
                "tree overflow: {count} nodes for {bodies} bodies"
            );
        }
        ctx.write_u32(lay.node_count, count);
    }

    #[allow(clippy::too_many_arguments)]
    fn write_node(
        &self,
        ctx: &Ctx<'_>,
        lay: &Layout,
        id: u32,
        cx: i64,
        cy: i64,
        half: i64,
        parent: u32,
    ) {
        let i = id as u64;
        ctx.write_i64(lay.n_cx + 8 * i, cx);
        ctx.write_i64(lay.n_cy + 8 * i, cy);
        ctx.write_i64(lay.n_half + 8 * i, half.max(1));
        ctx.write_i64(lay.n_mass + 8 * i, 0);
        ctx.write_i64(lay.n_mx + 8 * i, 0);
        ctx.write_i64(lay.n_my + 8 * i, 0);
        ctx.write_u32(lay.n_parent + 4 * i, parent);
        ctx.write_u32(lay.n_body + 4 * i, NIL);
        for q in 0..4 {
            ctx.write_u32(lay.n_child + 4 * (4 * i + q), NIL);
        }
    }

    fn quadrant(cx: i64, cy: i64, x: i64, y: i64) -> u64 {
        (u64::from(x >= cx)) | (u64::from(y >= cy) << 1)
    }

    fn child_center(cx: i64, cy: i64, half: i64, q: u64) -> (i64, i64) {
        let h2 = (half / 2).max(1);
        let nx = if q & 1 != 0 { cx + h2 } else { cx - h2 };
        let ny = if q & 2 != 0 { cy + h2 } else { cy - h2 };
        (nx, ny)
    }

    /// Parallel mass/moment contribution into each body's leaf cell, under
    /// per-cell locks (commutative fixed-point adds — the short critical
    /// sections the paper blames for Barnes's prefetching losses).
    fn mass_contribution(&self, ctx: &Ctx<'_>, lay: &Layout, lo: u64, hi: u64) {
        for body in lo..hi {
            let x = ctx.read_i64(lay.pos + 16 * body);
            let y = ctx.read_i64(lay.pos + 16 * body + 8);
            let mass = FX; // unit masses
            let node = ctx.read_u32(lay.leaf + 4 * body);
            let lock = CELL_LOCK_BASE + node % CELL_LOCKS;
            ctx.lock(lock);
            let m = ctx.read_i64(lay.n_mass + 8 * node as u64);
            let mx = ctx.read_i64(lay.n_mx + 8 * node as u64);
            let my = ctx.read_i64(lay.n_my + 8 * node as u64);
            ctx.write_i64(lay.n_mass + 8 * node as u64, m + mass);
            ctx.write_i64(lay.n_mx + 8 * node as u64, mx + x / 1024);
            ctx.write_i64(lay.n_my + 8 * node as u64, my + y / 1024);
            ctx.unlock(lock);
            ctx.compute(160);
        }
    }

    /// Sequential upward pass by processor 0: fold every node's mass and
    /// moments into its parent. Children have larger ids than their parents,
    /// so one reverse sweep suffices.
    fn upward_pass(&self, ctx: &Ctx<'_>, lay: &Layout) {
        let count = ctx.read_u32(lay.node_count);
        for node in (1..count as u64).rev() {
            let m = ctx.read_i64(lay.n_mass + 8 * node);
            if m == 0 {
                continue;
            }
            let parent = ctx.read_u32(lay.n_parent + 4 * node) as u64;
            let mx = ctx.read_i64(lay.n_mx + 8 * node);
            let my = ctx.read_i64(lay.n_my + 8 * node);
            let pm = ctx.read_i64(lay.n_mass + 8 * parent);
            let pmx = ctx.read_i64(lay.n_mx + 8 * parent);
            let pmy = ctx.read_i64(lay.n_my + 8 * parent);
            ctx.write_i64(lay.n_mass + 8 * parent, pm + m);
            ctx.write_i64(lay.n_mx + 8 * parent, pmx + mx);
            ctx.write_i64(lay.n_my + 8 * parent, pmy + my);
            ctx.compute(24);
        }
    }

    /// Barnes-Hut force computation for the owned bodies.
    fn forces(&self, ctx: &Ctx<'_>, lay: &Layout, lo: u64, hi: u64) {
        for body in lo..hi {
            let x = ctx.read_i64(lay.pos + 16 * body);
            let y = ctx.read_i64(lay.pos + 16 * body + 8);
            let (mut ax, mut ay) = (0i64, 0i64);
            let mut stack = vec![0u32];
            while let Some(node) = stack.pop() {
                ctx.compute(VISIT_COMPUTE);
                let m = ctx.read_i64(lay.n_mass + 8 * node as u64);
                if m == 0 {
                    continue;
                }
                let mx = ctx.read_i64(lay.n_mx + 8 * node as u64);
                let my = ctx.read_i64(lay.n_my + 8 * node as u64);
                let half = ctx.read_i64(lay.n_half + 8 * node as u64);
                // Centre of mass (moments were scaled by 1/1024).
                let comx = mx / (m / FX).max(1) * 1024;
                let comy = my / (m / FX).max(1) * 1024;
                let dx = comx - x;
                let dy = comy - y;
                let dist = dx.abs().max(dy.abs()).max(FX);
                let resident = ctx.read_u32(lay.n_body + 4 * node as u64);
                let open = resident == NIL && half * 16 > self.theta_16 * dist;
                if open {
                    for q in 0..4u64 {
                        let c = ctx.read_u32(lay.n_child + 4 * (4 * node as u64 + q));
                        if c != NIL {
                            stack.push(c);
                        }
                    }
                } else if resident != body as u32 {
                    // Skip self-interaction for own leaf; accumulate others.
                    let scale = (m / FX).max(1);
                    ax += dx / dist.max(1) * scale / 64;
                    ay += dy / dist.max(1) * scale / 64;
                }
            }
            ctx.write_i64(lay.acc + 16 * body, ax);
            ctx.write_i64(lay.acc + 16 * body + 8, ay);
        }
    }

    /// Leapfrog-ish integration of the owned bodies.
    fn integrate(&self, ctx: &Ctx<'_>, lay: &Layout, lo: u64, hi: u64) {
        for i in lo..hi {
            for ax in 0..2u64 {
                let a = ctx.read_i64(lay.acc + 16 * i + 8 * ax);
                let v = ctx.read_i64(lay.vel + 16 * i + 8 * ax) + a * 16;
                let p = ctx.read_i64(lay.pos + 16 * i + 8 * ax) + v / 8;
                ctx.write_i64(lay.vel + 16 * i + 8 * ax, v);
                ctx.write_i64(lay.pos + 16 * i + 8 * ax, p);
            }
            ctx.compute(110);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrants_partition_the_plane() {
        assert_eq!(Barnes::quadrant(0, 0, 5, 5), 3);
        assert_eq!(Barnes::quadrant(0, 0, -5, 5), 2);
        assert_eq!(Barnes::quadrant(0, 0, 5, -5), 1);
        assert_eq!(Barnes::quadrant(0, 0, -5, -5), 0);
        // Boundary goes to the upper quadrant.
        assert_eq!(Barnes::quadrant(0, 0, 0, 0), 3);
    }

    #[test]
    fn child_centers_nest() {
        let (cx, cy) = Barnes::child_center(0, 0, 4 * FX, 3);
        assert_eq!((cx, cy), (2 * FX, 2 * FX));
        let (cx, cy) = Barnes::child_center(0, 0, 4 * FX, 0);
        assert_eq!((cx, cy), (-2 * FX, -2 * FX));
    }

    #[test]
    fn max_nodes_bounds_tree_size() {
        let b = Barnes::default();
        assert!(b.max_nodes() > 2 * b.bodies as u64);
    }
}
