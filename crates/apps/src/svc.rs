//! Svc — open-loop DSM-backed key-value/session service (the `ncp2-svc`
//! workload family).
//!
//! Unlike the six closed-loop kernels, requests arrive on a seeded
//! open-loop stream (`ncp2_svc::ArrivalStream`) whether or not the nodes
//! keep up, so queueing delay exists and the headline observable is the
//! **response time** (completion − arrival), reported per request through
//! `Ctx::svc_reply` into the run's log-bucketed histogram. Each simulated
//! node serves the requests assigned to it by `ncp2_svc::node_of`:
//!
//! * **get** — a lock-protected read of one Zipf-sampled catalog cell
//!   (read-mostly pages; the lock carries write notices, so invalidations
//!   and fetches land on the critical path exactly as the paper's
//!   migratory-data discussion predicts);
//! * **put** — a lock-protected XOR update of the same cell (commutative,
//!   so the final catalog state — and the checksum — is independent of
//!   service order, processor count and protocol mode);
//! * **session** — a lock-pinned migratory mutation of a session record
//!   (XOR of a value cell plus a commutative counter increment).
//!
//! Every per-request decision (serving node, class, key, session, update
//! value) is a pure function of the request's global sequence number, so
//! the multiset of DSM updates is fixed: the checksum validates bit-for-bit
//! against the sequential baseline under every protocol mode, processor
//! count and fault plan, while response times are free to vary — which is
//! the entire point of the study.

use ncp2_sim::Cycles;
use ncp2_svc::{node_of, ArrivalStream, Keyspace, ReqMix};

use crate::framework::{Alloc, Ctx, Workload};

/// Salt stream for the per-request key sampler.
const KEY_SALT: u64 = 0xA076_1D64_78BD_642F;
/// Salt stream for the per-request session picker.
const SESSION_SALT: u64 = 0xE703_7ED1_A0B4_28DB;
/// Salt stream for the per-request update value.
const VALUE_SALT: u64 = 0x8EBC_6AF0_9C88_C6E3;

/// Service workload configuration.
#[derive(Debug, Clone)]
pub struct Svc {
    /// Total requests in the open-loop stream (across all nodes).
    pub requests: u64,
    /// Mean inter-arrival gap of the global stream, simulated cycles
    /// (smaller = higher offered load).
    pub mean_gap: Cycles,
    /// Catalog keys (Zipf-skewed popularity, rank 0 hottest).
    pub keys: usize,
    /// Session records (migratory, lock-pinned).
    pub sessions: usize,
    /// Put share of the request mix, permille.
    pub put_permille: u32,
    /// Session share of the request mix, permille.
    pub session_permille: u32,
    /// Zipf skew × 100 (0 = uniform, 100 = classic Zipf).
    pub skew_x100: u32,
    /// Local compute cycles per request (parsing, hashing, formatting).
    pub service_compute: Cycles,
    /// Stream / sampler seed.
    pub seed: u64,
}

impl Default for Svc {
    /// Tier-1 sizing: enough requests to populate a histogram, moderate
    /// utilization so the chaos slowdown budget holds.
    fn default() -> Self {
        Svc {
            requests: 96,
            mean_gap: 4_000,
            keys: 64,
            sessions: 8,
            put_permille: 250,
            session_permille: 125,
            skew_x100: 90,
            service_compute: 800,
            seed: 0x5ecc,
        }
    }
}

impl Svc {
    /// A copy of this config at a different offered load (used by the
    /// `svc_report` rate sweep).
    pub fn at_mean_gap(&self, mean_gap: Cycles) -> Self {
        Svc {
            mean_gap,
            ..self.clone()
        }
    }

    fn stream(&self) -> ArrivalStream {
        ArrivalStream::new(self.seed, self.mean_gap, self.requests)
    }

    fn mix(&self) -> ReqMix {
        ReqMix {
            put_permille: self.put_permille,
            session_permille: self.session_permille,
        }
    }

    /// The catalog key of request `seq` (Zipf-sampled, pure function).
    fn key_of(&self, keyspace: &Keyspace, seq: u64) -> usize {
        // overflow: hash mixing
        let mut rng = crate::rng::salted(self.seed, seq.wrapping_mul(KEY_SALT));
        keyspace.sample(&mut rng)
    }

    /// The session record of request `seq` (pure function).
    fn session_of(&self, seq: u64) -> u64 {
        // overflow: hash mixing
        let mut rng = crate::rng::salted(self.seed, seq.wrapping_mul(SESSION_SALT));
        rng.next_below(self.sessions as u64)
    }

    /// The commutative update value of request `seq` (pure function).
    fn value_of(&self, seq: u64) -> u64 {
        // overflow: hash mixing
        crate::rng::salted(self.seed, seq.wrapping_mul(VALUE_SALT)).next_u64()
    }

    fn key_lock(&self, key: usize) -> u32 {
        key as u32
    }

    fn session_lock(&self, s: u64) -> u32 {
        (self.keys as u64 + s) as u32
    }
}

/// Shared layout: the catalog array and the session records.
struct Layout {
    catalog: u64,
    sess_val: u64,
    sess_count: u64,
}

impl Layout {
    fn new(keys: usize, sessions: usize) -> Self {
        let mut a = Alloc::new();
        let catalog = a.page_aligned_array_f64(keys as u64);
        let sess_val = a.page_aligned_array_f64(sessions as u64);
        let sess_count = a.array_u64(sessions as u64);
        Layout {
            catalog,
            sess_val,
            sess_count,
        }
    }

    fn key_cell(&self, key: usize) -> u64 {
        self.catalog + 8 * key as u64
    }

    fn sess_val_cell(&self, s: u64) -> u64 {
        self.sess_val + 8 * s
    }

    fn sess_count_cell(&self, s: u64) -> u64 {
        self.sess_count + 8 * s
    }
}

impl Workload for Svc {
    fn name(&self) -> &'static str {
        "Svc"
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        assert!(self.keys > 0 && self.sessions > 0, "empty service state");
        let lay = Layout::new(self.keys, self.sessions);
        let keyspace = Keyspace::new(self.keys, self.skew_x100);
        let mix = self.mix();
        if ctx.pid == 0 {
            for k in 0..self.keys {
                ctx.write_u64(lay.key_cell(k), 0x5EED ^ k as u64);
            }
            for s in 0..self.sessions as u64 {
                ctx.write_u64(lay.sess_val_cell(s), 0);
                ctx.write_u64(lay.sess_count_cell(s), 0);
            }
        }
        ctx.barrier();

        // This node's slice of the global stream, in arrival order.
        let mine: Vec<ncp2_svc::Arrival> = self
            .stream()
            .iter()
            .filter(|a| node_of(a.seq, ctx.nprocs) == ctx.pid)
            .collect();
        let arrival_times: Vec<Cycles> = mine.iter().map(|a| a.at).collect();

        for (served, req) in mine.iter().enumerate() {
            // Open loop: idle (simulated) until the request has arrived;
            // if the node is behind, serve immediately — the backlog is
            // exactly the queueing delay the study measures.
            let now = ctx.now();
            if req.at > now {
                ctx.compute(req.at - now);
            }
            // Backlog after taking this request off the queue.
            let t = ctx.now();
            // arrival_times[served] = req.at ≤ t, so arrived ≥ served + 1.
            let arrived = arrival_times.partition_point(|&at| at <= t);
            let depth = (arrived - (served + 1)) as u64;
            ctx.svc_dequeue(depth);

            let class = mix.class_of(self.seed, req.seq);
            ctx.compute(self.service_compute);
            match class {
                ncp2_sim::SvcClass::Get => {
                    let key = self.key_of(&keyspace, req.seq);
                    ctx.lock(self.key_lock(key));
                    // The value is timing-dependent (it reflects whichever
                    // puts happened to finish first), so it must not feed
                    // the checksum — only the traffic matters.
                    let _ = ctx.read_u64(lay.key_cell(key));
                    ctx.unlock(self.key_lock(key));
                }
                ncp2_sim::SvcClass::Put => {
                    let key = self.key_of(&keyspace, req.seq);
                    ctx.lock(self.key_lock(key));
                    let old = ctx.read_u64(lay.key_cell(key));
                    ctx.write_u64(lay.key_cell(key), old ^ self.value_of(req.seq));
                    ctx.unlock(self.key_lock(key));
                }
                ncp2_sim::SvcClass::Session => {
                    let s = self.session_of(req.seq);
                    ctx.lock(self.session_lock(s));
                    let old = ctx.read_u64(lay.sess_val_cell(s));
                    ctx.write_u64(lay.sess_val_cell(s), old ^ self.value_of(req.seq));
                    let n = ctx.read_u64(lay.sess_count_cell(s));
                    ctx.write_u64(lay.sess_count_cell(s), n + 1);
                    ctx.unlock(self.session_lock(s));
                }
            }
            let done = ctx.now();
            ctx.svc_reply(class, done - req.at);
        }

        ctx.barrier();
        if ctx.pid == 0 {
            let mut ck = 0u64;
            for k in 0..self.keys {
                ck = ck.rotate_left(9) ^ ctx.read_u64(lay.key_cell(k));
            }
            for s in 0..self.sessions as u64 {
                ck = ck.rotate_left(9) ^ ctx.read_u64(lay.sess_val_cell(s));
                ck = ck.rotate_left(9) ^ ctx.read_u64(lay.sess_count_cell(s));
            }
            ck
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_app, sequential_baseline};
    use ncp2_core::{OverlapMode, Protocol};
    use ncp2_sim::SysParams;

    #[test]
    fn checksum_is_processor_count_invariant() {
        let seq = sequential_baseline(&SysParams::default(), Svc::default());
        assert_ne!(seq.checksum, 0);
        for nprocs in [2usize, 4, 8] {
            let r = run_app(
                SysParams::default().with_nprocs(nprocs),
                Protocol::TreadMarks(OverlapMode::IPD),
                Svc::default(),
            );
            assert_eq!(r.checksum, seq.checksum, "checksum drift at {nprocs}p");
        }
    }

    #[test]
    fn checksum_is_mode_invariant() {
        let base = run_app(
            SysParams::default().with_nprocs(4),
            Protocol::TreadMarks(OverlapMode::Base),
            Svc::default(),
        );
        for proto in [
            Protocol::TreadMarks(OverlapMode::IPD),
            Protocol::Aurc { prefetch: true },
        ] {
            let r = run_app(SysParams::default().with_nprocs(4), proto, Svc::default());
            assert_eq!(r.checksum, base.checksum);
        }
    }

    #[test]
    fn run_reports_service_stats() {
        let cfg = Svc::default();
        let total = cfg.requests;
        let r = run_app(
            SysParams::default().with_nprocs(4),
            Protocol::TreadMarks(OverlapMode::IPD),
            cfg,
        );
        let svc = r.svc.expect("service run must carry SvcStats");
        assert_eq!(svc.completed(), total);
        assert_eq!(svc.dequeues, total);
        assert_eq!(svc.response.count(), total);
        assert!(svc.gets > 0 && svc.puts > 0 && svc.sessions > 0);
        // Responses include at least the service compute time.
        assert!(svc.response.quantile(0.5) >= 800);
    }

    #[test]
    fn closed_loop_kernels_carry_no_svc_stats() {
        let r = run_app(
            SysParams::default().with_nprocs(2),
            Protocol::TreadMarks(OverlapMode::Base),
            crate::Tsp {
                cities: 6,
                prefix_depth: 2,
                seed: 1,
            },
        );
        assert!(r.svc.is_none());
    }

    #[test]
    fn pure_functions_are_pure() {
        let svc = Svc::default();
        let ks = Keyspace::new(svc.keys, svc.skew_x100);
        for seq in 0..50 {
            assert_eq!(svc.key_of(&ks, seq), svc.key_of(&ks, seq));
            assert_eq!(svc.session_of(seq), svc.session_of(seq));
            assert_eq!(svc.value_of(seq), svc.value_of(seq));
            assert!(svc.session_of(seq) < svc.sessions as u64);
            assert!(svc.key_of(&ks, seq) < svc.keys);
        }
    }
}
