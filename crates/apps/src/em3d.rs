//! Em3d — electromagnetic wave propagation through 3-D objects (Split-C
//! benchmark, §4.2). A bipartite graph of E and H nodes: each iteration
//! updates every E node from its H neighbours, then every H node from its E
//! neighbours, with barriers between phases. Neighbours are random; with
//! probability `remote_pct` a neighbour lives on a different processor, so
//! each phase pulls freshly written remote pages — Em3d has the paper's
//! highest diff overhead (26.7%) and its biggest wins from overlap.

use crate::framework::{Alloc, Ctx, Workload};

/// Cycles of local work per neighbour accumulation.
const EDGE_COMPUTE: u64 = 110;

/// Em3d configuration.
#[derive(Debug, Clone)]
pub struct Em3d {
    /// E nodes (H nodes count the same); the paper simulates 40064 total.
    pub nodes: usize,
    /// Neighbours per node.
    pub degree: usize,
    /// Probability (percent) that a neighbour is owned by another processor.
    pub remote_pct: u32,
    /// Iterations; the paper runs 6.
    pub iters: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for Em3d {
    /// Scaled-down default: 2×8192 objects, degree 3, 10% remote, 6 iters.
    fn default() -> Self {
        Em3d {
            nodes: 8192,
            degree: 3,
            remote_pct: 10,
            iters: 6,
            seed: 0xE43D,
        }
    }
}

impl Em3d {
    /// The paper's problem size: 40064 objects in total.
    pub fn paper() -> Self {
        Em3d {
            nodes: 20032,
            ..Self::default()
        }
    }

    /// Locality zones used to generate the graph. Fixed (16, the paper's
    /// node count) so the graph — and therefore the checksum — is identical
    /// on every simulated processor count.
    pub const ZONES: usize = 16;

    /// Deterministic neighbour lists for one side of the bipartite graph.
    /// Ownership zones shape where the `remote_pct` remote edges land.
    fn neighbours(&self, salt: u64) -> Vec<Vec<u32>> {
        let nprocs = Self::ZONES;
        let mut rng = crate::rng::salted(self.seed, salt);
        let n = self.nodes as u64;
        let per = n.div_ceil(nprocs as u64);
        (0..n)
            .map(|i| {
                let owner = i / per;
                (0..self.degree)
                    .map(|_| {
                        let remote = rng.next_below(100) < self.remote_pct as u64;
                        if remote {
                            // Any node owned by a different processor.
                            loop {
                                let cand = rng.next_below(n);
                                if cand / per != owner {
                                    break cand as u32;
                                }
                            }
                        } else {
                            // A node on the same processor.
                            let lo = owner * per;
                            let hi = ((owner + 1) * per).min(n);
                            (lo + rng.next_below(hi - lo)) as u32
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

struct Layout {
    e_vals: u64,
    h_vals: u64,
}

impl Layout {
    fn new(nodes: usize) -> Self {
        let mut a = Alloc::new();
        let e_vals = a.page_aligned_array_f64(nodes as u64);
        let h_vals = a.page_aligned_array_f64(nodes as u64);
        Layout { e_vals, h_vals }
    }
}

impl Workload for Em3d {
    fn name(&self) -> &'static str {
        "Em3d"
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        let lay = Layout::new(self.nodes);
        // The graph structure is identical on every processor (read-only in
        // the original program; kept private here — see DESIGN.md).
        let e_from_h = self.neighbours(0xE);
        let h_from_e = self.neighbours(0xA);
        if ctx.pid == 0 {
            for i in 0..self.nodes as u64 {
                ctx.write_f64(lay.e_vals + 8 * i, (i % 97) as f64 / 97.0);
                ctx.write_f64(lay.h_vals + 8 * i, (i % 89) as f64 / 89.0);
            }
        }
        ctx.barrier();
        let (lo, hi) = ctx.block_range(self.nodes as u64);
        // Locality-ordered iteration: nodes whose neighbours are all local
        // first, nodes with remote (possibly invalidated) neighbours last —
        // this gives acquire-time prefetches their lead time. The update
        // order within a phase does not change the result (each phase only
        // reads the other side's values).
        let per = (self.nodes as u64).div_ceil(Self::ZONES as u64);
        let order_for = |g: &[Vec<u32>]| -> Vec<u64> {
            let zone = |i: u64| i / per;
            let mut local: Vec<u64> = Vec::new();
            let mut remote: Vec<u64> = Vec::new();
            for i in lo..hi {
                if g[i as usize].iter().all(|&nb| zone(nb as u64) == zone(i)) {
                    local.push(i);
                } else {
                    remote.push(i);
                }
            }
            local.extend(remote);
            local
        };
        let e_order = order_for(&e_from_h);
        let h_order = order_for(&h_from_e);
        for _ in 0..self.iters {
            // E phase: e[i] -= weighted sum of its H neighbours.
            for &i in &e_order {
                let mut acc = ctx.read_f64(lay.e_vals + 8 * i);
                for &nb in &e_from_h[i as usize] {
                    acc -= 0.4 * ctx.read_f64(lay.h_vals + 8 * nb as u64);
                }
                ctx.write_f64(lay.e_vals + 8 * i, acc);
                ctx.compute(self.degree as u64 * EDGE_COMPUTE);
            }
            ctx.barrier();
            // H phase: h[i] -= weighted sum of its E neighbours.
            for &i in &h_order {
                let mut acc = ctx.read_f64(lay.h_vals + 8 * i);
                for &nb in &h_from_e[i as usize] {
                    acc -= 0.4 * ctx.read_f64(lay.e_vals + 8 * nb as u64);
                }
                ctx.write_f64(lay.h_vals + 8 * i, acc);
                ctx.compute(self.degree as u64 * EDGE_COMPUTE);
            }
            ctx.barrier();
        }
        if ctx.pid == 0 {
            let mut ck = 0u64;
            for i in 0..self.nodes as u64 {
                ck = ck.rotate_left(5) ^ ctx.read_f64(lay.e_vals + 8 * i).to_bits();
                ck = ck.rotate_left(5) ^ ctx.read_f64(lay.h_vals + 8 * i).to_bits();
            }
            ck
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_deterministic() {
        let e = Em3d::default();
        assert_eq!(e.neighbours(1), e.neighbours(1));
        assert_ne!(e.neighbours(1), e.neighbours(2));
    }

    #[test]
    fn remote_fraction_is_roughly_honoured() {
        let e = Em3d {
            nodes: 4096,
            degree: 4,
            remote_pct: 10,
            iters: 1,
            seed: 9,
        };
        let per = (e.nodes as u64).div_ceil(Em3d::ZONES as u64);
        let g = e.neighbours(0);
        let mut remote = 0usize;
        let mut total = 0usize;
        for (i, nbs) in g.iter().enumerate() {
            let owner = i as u64 / per;
            for &nb in nbs {
                total += 1;
                if nb as u64 / per != owner {
                    remote += 1;
                }
            }
        }
        let pct = remote as f64 / total as f64 * 100.0;
        assert!(
            (5.0..15.0).contains(&pct),
            "remote fraction {pct}% not near 10%"
        );
    }

    #[test]
    fn graph_has_requested_shape() {
        let e = Em3d::default();
        let g = e.neighbours(0);
        assert_eq!(g.len(), e.nodes);
        assert!(g.iter().all(|nbs| nbs.len() == e.degree));
        assert!(g.iter().flatten().all(|&nb| (nb as usize) < e.nodes));
    }
}
