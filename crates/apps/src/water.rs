//! Water — n² molecular dynamics (SPLASH-2 water-nsquared).
//!
//! Each timestep computes all pairwise intermolecular forces. Processors
//! accumulate force contributions privately, then merge them into the shared
//! force array under **per-molecule locks** — the short critical sections
//! that make prefetching counter-productive for Water in the paper (§5.1:
//! "prefetching makes short critical sections extremely expensive").
//!
//! All physics is fixed-point (`i64` scaled by 2^20): shared-memory
//! accumulation is commutative and associative, so the final checksum is
//! bit-identical on any processor count.

use crate::framework::{Alloc, Ctx, Workload};

/// Fixed-point scale (2^20).
const FX: i64 = 1 << 20;
/// First lock id used for per-molecule accumulation locks.
const MOL_LOCK_BASE: u32 = 8;
/// Number of accumulation locks (molecules hash onto them).
const MOL_LOCKS: u32 = 16;
/// Cycles of local work per pair interaction.
const PAIR_COMPUTE: u64 = 9000;
/// Cycles of local work per molecule position update.
const UPDATE_COMPUTE: u64 = 180;

/// Water configuration.
#[derive(Debug, Clone)]
pub struct Water {
    /// Number of molecules; the paper simulates 512.
    pub molecules: usize,
    /// Timesteps.
    pub steps: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for Water {
    /// Scaled-down default: 128 molecules, 3 steps.
    fn default() -> Self {
        Water {
            molecules: 128,
            steps: 3,
            seed: 0x3a7e5,
        }
    }
}

impl Water {
    /// The paper's problem size: 512 molecules.
    pub fn paper() -> Self {
        Water {
            molecules: 512,
            ..Self::default()
        }
    }

    /// Simplified bounded pair force on one axis (fixed point): a soft
    /// spring toward separation zero with saturation.
    fn pair_force(d: i64) -> i64 {
        let clamped = d.clamp(-8 * FX, 8 * FX);
        -(clamped / 16)
    }
}

struct Layout {
    pos: u64,
    vel: u64,
    force: u64,
}

impl Layout {
    fn new(m: usize) -> Self {
        let mut a = Alloc::new();
        let m3 = 3 * m as u64;
        let pos = a.page_aligned_array_f64(m3);
        let vel = a.page_aligned_array_f64(m3);
        let force = a.page_aligned_array_f64(m3);
        Layout { pos, vel, force }
    }

    fn pos3(&self, m: u64) -> u64 {
        self.pos + 24 * m
    }

    fn vel3(&self, m: u64) -> u64 {
        self.vel + 24 * m
    }

    fn force3(&self, m: u64) -> u64 {
        self.force + 24 * m
    }
}

impl Workload for Water {
    fn name(&self) -> &'static str {
        "Water"
    }

    fn run(&self, ctx: &mut Ctx<'_>) -> u64 {
        let m = self.molecules as u64;
        let lay = Layout::new(self.molecules);
        if ctx.pid == 0 {
            let mut rng = crate::rng::seeded(self.seed);
            for i in 0..m {
                for ax in 0..3u64 {
                    let p = crate::rng::centered_fx(&mut rng, 32, FX);
                    ctx.write_i64(lay.pos3(i) + 8 * ax, p);
                    ctx.write_i64(lay.vel3(i) + 8 * ax, 0);
                    ctx.write_i64(lay.force3(i) + 8 * ax, 0);
                }
            }
        }
        ctx.barrier();
        let (lo, hi) = ctx.block_range(m);
        let half = m / 2;
        for _step in 0..self.steps {
            // Zero this block's forces.
            for i in lo..hi {
                for ax in 0..3u64 {
                    ctx.write_i64(lay.force3(i) + 8 * ax, 0);
                }
            }
            ctx.barrier();
            // Pairwise forces: molecule i interacts with the next m/2
            // molecules (cyclic), the SPLASH pairing that touches each pair
            // exactly once. Contributions accumulate privately.
            let mut acc = vec![0i64; 3 * self.molecules];
            for i in lo..hi {
                let pi: Vec<i64> = (0..3)
                    .map(|ax| ctx.read_i64(lay.pos3(i) + 8 * ax))
                    .collect();
                for k in 1..=half {
                    if m.is_multiple_of(2) && k == half && i >= m / 2 {
                        continue; // the mirrored half already covered it
                    }
                    let j = (i + k) % m;
                    let mut f = [0i64; 3];
                    for ax in 0..3usize {
                        let pj = ctx.read_i64(lay.pos3(j) + 8 * ax as u64);
                        f[ax] = Self::pair_force(pi[ax] - pj);
                    }
                    ctx.compute(PAIR_COMPUTE);
                    for ax in 0..3usize {
                        acc[3 * i as usize + ax] += f[ax];
                        acc[3 * j as usize + ax] -= f[ax];
                    }
                }
            }
            // Merge private accumulations under per-molecule locks —
            // the short critical sections.
            for mol in 0..m {
                let base = 3 * mol as usize;
                if acc[base] == 0 && acc[base + 1] == 0 && acc[base + 2] == 0 {
                    continue;
                }
                ctx.lock(MOL_LOCK_BASE + (mol as u32) % MOL_LOCKS);
                for ax in 0..3usize {
                    let addr = lay.force3(mol) + 8 * ax as u64;
                    let cur = ctx.read_i64(addr);
                    ctx.write_i64(addr, cur + acc[base + ax]);
                }
                ctx.unlock(MOL_LOCK_BASE + (mol as u32) % MOL_LOCKS);
            }
            ctx.barrier();
            // Integrate owned molecules.
            for i in lo..hi {
                for ax in 0..3u64 {
                    let f = ctx.read_i64(lay.force3(i) + 8 * ax);
                    let v = ctx.read_i64(lay.vel3(i) + 8 * ax) + f / 4;
                    let p = ctx.read_i64(lay.pos3(i) + 8 * ax) + v / 4;
                    ctx.write_i64(lay.vel3(i) + 8 * ax, v);
                    ctx.write_i64(lay.pos3(i) + 8 * ax, p);
                }
                ctx.compute(UPDATE_COMPUTE);
            }
            ctx.barrier();
        }
        if ctx.pid == 0 {
            let mut ck = 0u64;
            for i in 0..m {
                for ax in 0..3u64 {
                    ck = ck.rotate_left(9) ^ ctx.read_i64(lay.pos3(i) + 8 * ax) as u64;
                }
            }
            ck
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_force_is_antisymmetric_and_bounded() {
        for d in [-100 * FX, -FX, 0, FX, 100 * FX] {
            assert_eq!(Water::pair_force(d), -Water::pair_force(-d));
            assert!(Water::pair_force(d).abs() <= FX / 2);
        }
        assert_eq!(Water::pair_force(0), 0);
    }

    #[test]
    fn cyclic_pairing_covers_each_pair_once() {
        // Replicate the loop structure and check pair coverage.
        let m = 8u64;
        let half = m / 2;
        let mut pairs = std::collections::HashSet::new();
        for i in 0..m {
            for k in 1..=half {
                if m.is_multiple_of(2) && k == half && i >= m / 2 {
                    continue;
                }
                let j = (i + k) % m;
                let key = (i.min(j), i.max(j));
                assert!(pairs.insert(key), "pair {key:?} visited twice");
            }
        }
        assert_eq!(pairs.len() as u64, m * (m - 1) / 2);
    }

    #[test]
    fn layout_regions_disjoint() {
        let lay = Layout::new(96);
        assert!(lay.vel >= lay.pos + 24 * 96);
        assert!(lay.force >= lay.vel + 24 * 96);
    }
}
