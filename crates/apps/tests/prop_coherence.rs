//! Property-based whole-stack fuzzing: random workload configurations on
//! random machine shapes under random protocols must always match their
//! sequential checksums. This is the heaviest hammer we have against
//! residual protocol races; case counts are kept small because each case is
//! a full simulation.

use ncp2_apps::{
    run_app, run_app_with, sequential_baseline, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload,
};
use ncp2_core::{OverlapMode, Protocol};
use ncp2_sim::SysParams;
use ncp2_verify::VerifyOracle;
use proptest::prelude::*;

fn protocol(idx: u8) -> Protocol {
    match idx % 8 {
        0 => Protocol::TreadMarks(OverlapMode::Base),
        1 => Protocol::TreadMarks(OverlapMode::I),
        2 => Protocol::TreadMarks(OverlapMode::ID),
        3 => Protocol::TreadMarks(OverlapMode::P),
        4 => Protocol::TreadMarks(OverlapMode::IP),
        5 => Protocol::TreadMarks(OverlapMode::IPD),
        6 => Protocol::Aurc { prefetch: false },
        _ => Protocol::Aurc { prefetch: true },
    }
}

fn check<W: Workload + Clone>(app: W, nprocs: usize, proto: Protocol) {
    let seq = sequential_baseline(&SysParams::default(), app.clone());
    let par = run_app(SysParams::default().with_nprocs(nprocs), proto, app.clone());
    assert_eq!(
        par.checksum,
        seq.checksum,
        "{} diverged: nprocs={nprocs} proto={proto}",
        app.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn radix_random_configs(
        keys_log in 7usize..11,
        radix_log in 4usize..8,
        passes in 1usize..4,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Radix { keys: 1 << keys_log, radix: 1 << radix_log, passes, seed };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn em3d_random_configs(
        nodes in 64usize..768,
        degree in 1usize..5,
        remote in 0u32..40,
        iters in 1usize..4,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Em3d { nodes, degree, remote_pct: remote, iters, seed };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn ocean_random_configs(
        grid in 10usize..40,
        iters in 1usize..4,
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Ocean { grid, iters };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn barnes_random_configs(
        bodies in 8usize..80,
        steps in 1usize..3,
        theta in 4i64..24,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Barnes { bodies, steps, theta_16: theta, seed };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn tsp_random_configs(
        cities in 5usize..9,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Tsp { cities, prefix_depth: 2, seed };
        // TSP also has an independent oracle: the host-side solver.
        let optimal = app.solve_reference() as u64;
        let par = run_app(SysParams::default().with_nprocs(nprocs), protocol(proto), app.clone());
        prop_assert_eq!(par.checksum, optimal, "nprocs={} proto={}", nprocs, protocol(proto));
    }

    #[test]
    fn water_random_configs(
        molecules in 4usize..40,
        steps in 1usize..3,
        seed in any::<u64>(),
        nprocs in 2usize..16,
        proto in 0u8..8
    ) {
        let app = Water { molecules, steps, seed };
        check(app, nprocs, protocol(proto));
    }
}

/// Runs `app` with the `ncp2-verify` shadow oracle attached (honoring its
/// annotated benign races) and asserts the run is violation-free — in
/// particular, that the happens-before race detector finds zero races.
fn check_race_free(app: Box<dyn Workload>, nprocs: usize, proto: Protocol) {
    let params = SysParams::default().with_nprocs(nprocs);
    let name = app.name();
    let racy = app.racy_ranges();
    let result = run_app_with(params.clone(), proto, app, |sim| {
        let mut oracle = VerifyOracle::new(&params, &proto);
        for range in racy {
            oracle.exempt_range(range);
        }
        sim.attach_observer(Box::new(oracle));
    });
    assert!(
        result.violations.is_empty(),
        "{name} under {proto} (nprocs={nprocs}) reported: {:#?}",
        result.violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Correctly-synchronized programs are data-race-free by construction —
    /// LRC's correctness precondition (§2). Random configurations of every
    /// workload must come out of the race detector clean.
    #[test]
    fn synchronized_programs_have_zero_races(
        which in 0usize..6,
        seed in any::<u64>(),
        nprocs in 2usize..8,
        proto in 0u8..8
    ) {
        let app: Box<dyn Workload> = match which {
            0 => Box::new(Tsp { cities: 6, prefix_depth: 2, seed }),
            1 => Box::new(Water { molecules: 8, steps: 1, seed }),
            2 => Box::new(Radix { keys: 128, radix: 16, passes: 1, seed }),
            3 => Box::new(Barnes { bodies: 12, steps: 1, theta_16: 8, seed }),
            4 => Box::new(Em3d { nodes: 64, degree: 2, remote_pct: 20, iters: 1, seed }),
            _ => Box::new(Ocean { grid: 12, iters: 1 }),
        };
        check_race_free(app, nprocs, protocol(proto));
    }
}
