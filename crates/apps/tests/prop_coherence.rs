//! Property-based whole-stack fuzzing: random workload configurations on
//! random machine shapes under random protocols must always match their
//! sequential checksums. This is the heaviest hammer we have against
//! residual protocol races; case counts are kept small because each case is
//! a full simulation.

use ncp2_apps::{run_app, sequential_baseline, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload};
use ncp2_core::{OverlapMode, Protocol};
use ncp2_sim::SysParams;
use proptest::prelude::*;

fn protocol(idx: u8) -> Protocol {
    match idx % 8 {
        0 => Protocol::TreadMarks(OverlapMode::Base),
        1 => Protocol::TreadMarks(OverlapMode::I),
        2 => Protocol::TreadMarks(OverlapMode::ID),
        3 => Protocol::TreadMarks(OverlapMode::P),
        4 => Protocol::TreadMarks(OverlapMode::IP),
        5 => Protocol::TreadMarks(OverlapMode::IPD),
        6 => Protocol::Aurc { prefetch: false },
        _ => Protocol::Aurc { prefetch: true },
    }
}

fn check<W: Workload + Clone>(app: W, nprocs: usize, proto: Protocol) {
    let seq = sequential_baseline(&SysParams::default(), app.clone());
    let par = run_app(SysParams::default().with_nprocs(nprocs), proto, app.clone());
    assert_eq!(
        par.checksum,
        seq.checksum,
        "{} diverged: nprocs={nprocs} proto={proto}",
        app.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn radix_random_configs(
        keys_log in 7usize..11,
        radix_log in 4usize..8,
        passes in 1usize..4,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Radix { keys: 1 << keys_log, radix: 1 << radix_log, passes, seed };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn em3d_random_configs(
        nodes in 64usize..768,
        degree in 1usize..5,
        remote in 0u32..40,
        iters in 1usize..4,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Em3d { nodes, degree, remote_pct: remote, iters, seed };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn ocean_random_configs(
        grid in 10usize..40,
        iters in 1usize..4,
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Ocean { grid, iters };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn barnes_random_configs(
        bodies in 8usize..80,
        steps in 1usize..3,
        theta in 4i64..24,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Barnes { bodies, steps, theta_16: theta, seed };
        check(app, nprocs, protocol(proto));
    }

    #[test]
    fn tsp_random_configs(
        cities in 5usize..9,
        seed in any::<u64>(),
        nprocs in 2usize..12,
        proto in 0u8..8
    ) {
        let app = Tsp { cities, prefix_depth: 2, seed };
        // TSP also has an independent oracle: the host-side solver.
        let optimal = app.solve_reference() as u64;
        let par = run_app(SysParams::default().with_nprocs(nprocs), protocol(proto), app.clone());
        prop_assert_eq!(par.checksum, optimal, "nprocs={} proto={}", nprocs, protocol(proto));
    }

    #[test]
    fn water_random_configs(
        molecules in 4usize..40,
        steps in 1usize..3,
        seed in any::<u64>(),
        nprocs in 2usize..16,
        proto in 0u8..8
    ) {
        let app = Water { molecules, steps, seed };
        check(app, nprocs, protocol(proto));
    }
}
