//! End-to-end application correctness: every workload must produce the same
//! checksum on the 16-node DSM (under several protocols) as on a single
//! processor with the DSM disabled. Because the DSM moves real bytes
//! (twins, diffs, page fetches), this validates the coherence protocols
//! against the strongest oracle available.

use ncp2_apps::{run_app, sequential_baseline, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload};
use ncp2_core::{OverlapMode, Protocol};
use ncp2_sim::SysParams;

fn check<W: Workload + Clone>(app: W, protocols: &[Protocol]) {
    let params = SysParams::default();
    let seq = sequential_baseline(&params, app.clone());
    assert_ne!(
        seq.checksum,
        0,
        "{}: sequential checksum is zero",
        app.name()
    );
    for &proto in protocols {
        let r = run_app(params.clone(), proto, app.clone());
        assert_eq!(
            r.checksum,
            seq.checksum,
            "{} under {} diverged from sequential",
            app.name(),
            proto
        );
        assert!(r.total_cycles > 0);
    }
}

const SPOT: [Protocol; 3] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: true },
];

const FULL: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

#[test]
fn tsp_matches_sequential_and_reference() {
    let app = Tsp {
        cities: 8,
        prefix_depth: 2,
        seed: 0x7597,
    };
    let expected = app.solve_reference() as u64;
    let params = SysParams::default();
    let seq = sequential_baseline(&params, app.clone());
    assert_eq!(
        seq.checksum, expected,
        "sequential TSP disagrees with reference solver"
    );
    check(app, &FULL);
}

#[test]
fn radix_matches_sequential_under_all_protocols() {
    check(
        Radix {
            keys: 2048,
            radix: 64,
            passes: 3,
            seed: 0x5ad1,
        },
        &FULL,
    );
}

#[test]
fn ocean_matches_sequential_under_all_protocols() {
    check(Ocean { grid: 34, iters: 4 }, &FULL);
}

#[test]
fn em3d_matches_sequential_under_all_protocols() {
    check(
        Em3d {
            nodes: 512,
            degree: 3,
            remote_pct: 10,
            iters: 3,
            seed: 0xE43D,
        },
        &FULL,
    );
}

#[test]
fn water_matches_sequential_under_all_protocols() {
    check(
        Water {
            molecules: 32,
            steps: 2,
            seed: 0x3a7e5,
        },
        &FULL,
    );
}

#[test]
fn barnes_matches_sequential_under_all_protocols() {
    check(
        Barnes {
            bodies: 64,
            steps: 2,
            theta_16: 12,
            seed: 0xBA12,
        },
        &FULL,
    );
}

#[test]
fn default_sizes_run_under_spot_protocols() {
    check(Tsp::default(), &SPOT);
    check(Em3d::default(), &SPOT);
}
