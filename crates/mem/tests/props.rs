//! Property-based tests for the memory-hierarchy models against reference
//! implementations.

use ncp2_mem::{Cache, NodeMemory, Tlb, WriteBuffer};
use ncp2_sim::{FifoResource, SysParams};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// The TLB behaves exactly like a reference FIFO set.
    #[test]
    fn tlb_matches_reference_fifo(
        cap in 1usize..16,
        accesses in prop::collection::vec(0u64..32, 0..300)
    ) {
        let mut tlb = Tlb::new(cap);
        let mut reference: VecDeque<u64> = VecDeque::new();
        for &page in &accesses {
            let expect_hit = reference.contains(&page);
            prop_assert_eq!(tlb.access(page), expect_hit);
            if !expect_hit {
                if reference.len() == cap {
                    reference.pop_front();
                }
                reference.push_back(page);
            }
        }
    }

    /// The direct-mapped cache behaves exactly like a reference tag array
    /// (write-through, no write allocate).
    #[test]
    fn cache_matches_reference_tags(
        lines in 1u64..64,
        ops in prop::collection::vec((0u64..65536, any::<bool>()), 0..300)
    ) {
        let mut cache = Cache::new(lines, 32);
        let mut tags: Vec<Option<u64>> = vec![None; lines as usize];
        for &(addr, is_write) in &ops {
            let line = addr / 32;
            let idx = (line % lines) as usize;
            let expect_hit = tags[idx] == Some(line);
            if is_write {
                prop_assert_eq!(cache.write(addr), expect_hit);
            } else {
                prop_assert_eq!(cache.read(addr), expect_hit);
                tags[idx] = Some(line);
            }
        }
    }

    /// The write buffer never exceeds capacity and only stalls when full.
    #[test]
    fn write_buffer_respects_capacity(
        cap in 1usize..8,
        writes in prop::collection::vec((0u64..50, 1u64..100), 1..200)
    ) {
        let mut wb = WriteBuffer::new(cap);
        let mut dram = FifoResource::new();
        let mut now = 0u64;
        for &(gap, dur) in &writes {
            now += gap;
            let had_room = wb.len() < cap || {
                let mut probe = wb.len();
                // retire what would retire by `now`
                let _ = &mut probe;
                true
            };
            let stall = wb.push(now, &mut dram, dur);
            prop_assert!(wb.len() <= cap);
            if stall > 0 {
                prop_assert!(had_room, "stall implies the buffer was full at push time");
            }
            now += stall;
        }
        prop_assert_eq!(wb.writes(), writes.len() as u64);
    }

    /// A full node hierarchy never reports completion before issue time and
    /// repeated reads of one address eventually hit.
    #[test]
    fn node_memory_is_monotone(addrs in prop::collection::vec(0u64..(1 << 20), 1..200)) {
        let p = SysParams::default();
        let mut node = NodeMemory::new(&p);
        let mut now = 0;
        for &addr in &addrs {
            let aligned = addr & !3;
            let out = node.read(now, aligned, &p);
            prop_assert!(out.done > now, "time must advance");
            now = out.done;
            let again = node.read(now, aligned, &p);
            prop_assert!(again.cache_hit, "immediate re-read must hit");
            prop_assert!(again.tlb_hit, "immediate re-read must hit the TLB");
            now = again.done;
        }
    }
}
