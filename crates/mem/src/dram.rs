//! Local DRAM: a contended single server with setup + per-word timing.

use ncp2_sim::{Cycles, FifoResource, SysParams};

/// The node's local memory.
///
/// Shared by the processor (line fills, write-buffer drains), the protocol
/// controller (diff reads/writes, page stores) and the network interface;
/// all of them serialize on [`Dram::resource`].
///
/// ```
/// use ncp2_sim::SysParams;
/// use ncp2_mem::Dram;
/// let p = SysParams::default();
/// let mut d = Dram::new();
/// let (start, end) = d.access(0, 8, &p); // one 32-byte line
/// assert_eq!((start, end), (0, 34));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dram {
    /// Underlying FIFO reservation state.
    pub resource: FifoResource,
}

impl Dram {
    /// Creates an idle memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a `words`-word access starting no earlier than `now`;
    /// returns the granted `(start, end)` slot.
    pub fn access(&mut self, now: Cycles, words: u64, params: &SysParams) -> (Cycles, Cycles) {
        self.resource.reserve(now, params.mem_access(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_concurrent_accesses() {
        let p = SysParams::default();
        let mut d = Dram::new();
        let (_, e1) = d.access(0, 8, &p);
        let (s2, _) = d.access(0, 8, &p);
        assert_eq!(s2, e1);
    }

    #[test]
    fn page_transfer_cost() {
        let p = SysParams::default();
        let mut d = Dram::new();
        let (s, e) = d.access(0, p.page_words(), &p);
        assert_eq!(e - s, 10 + 3 * 1024);
    }
}
