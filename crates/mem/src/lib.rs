//! # ncp2-mem — per-node memory hierarchy models
//!
//! Finite-size structures of one workstation node in the NCP2 study: the
//! 128-entry TLB, the 128-KB direct-mapped first-level data cache, the
//! 4-entry write buffer, the local DRAM and the PCI bus (both contended
//! single servers). All constants come from [`ncp2_sim::SysParams`]
//! (Table 1 of the paper) and every one can be swept.
//!
//! These models are *timing* models: the DSM data plane (actual page
//! contents) lives in `ncp2-core`; this crate answers "how long does this
//! reference take and which stall category does it fall into".
//!
//! ```
//! use ncp2_sim::SysParams;
//! use ncp2_mem::NodeMemory;
//!
//! let p = SysParams::default();
//! let mut node = NodeMemory::new(&p);
//! // A cold read misses TLB and cache: fill + line fetch from local DRAM.
//! let r = node.read(0, 0x1000, &p);
//! assert!(!r.cache_hit && !r.tlb_hit);
//! assert!(r.done > 0);
//! ```

pub mod cache;
pub mod dram;
pub mod pci;
pub mod tlb;
pub mod write_buffer;

pub use cache::Cache;
pub use dram::Dram;
pub use pci::PciBus;
pub use tlb::Tlb;
pub use write_buffer::WriteBuffer;

use ncp2_sim::{Cycles, SysParams};

/// Outcome of one processor data reference through the node hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Simulated time at which the reference completes.
    pub done: Cycles,
    /// Cycles attributable to TLB fill.
    pub tlb_cycles: Cycles,
    /// Cycles attributable to cache-miss service / write-buffer stall.
    pub stall_cycles: Cycles,
    /// Whether the data cache hit.
    pub cache_hit: bool,
    /// Whether the TLB hit.
    pub tlb_hit: bool,
}

/// The complete per-node memory hierarchy (timing side).
#[derive(Debug, Clone)]
pub struct NodeMemory {
    /// Address-translation buffer.
    pub tlb: Tlb,
    /// First-level data cache.
    pub cache: Cache,
    /// Write buffer between processor and memory bus.
    pub wb: WriteBuffer,
    /// Local DRAM (contended).
    pub dram: Dram,
    /// PCI bus hosting the network interface and protocol controller.
    pub pci: PciBus,
}

impl NodeMemory {
    /// Builds a hierarchy sized by `params`.
    pub fn new(params: &SysParams) -> Self {
        NodeMemory {
            tlb: Tlb::new(params.tlb_entries),
            cache: Cache::new(params.cache_lines(), params.line_bytes),
            wb: WriteBuffer::new(params.write_buffer_entries),
            dram: Dram::new(),
            pci: PciBus::new(),
        }
    }

    /// Simulates a shared-data **read** issued at `now` against a locally
    /// valid page: TLB check, cache lookup, line fill from DRAM on miss.
    pub fn read(&mut self, now: Cycles, addr: u64, params: &SysParams) -> AccessOutcome {
        let mut t = now;
        let (tlb_hit, tlb_cycles) = self.translate(addr, params);
        t += tlb_cycles;
        let cache_hit = self.cache.read(addr);
        let mut stall = 0;
        if !cache_hit {
            // Fetch the whole line from local DRAM, paying contention.
            let (_, end) = self.dram.access(t, params.line_words(), params);
            stall = end - t;
            t = end;
        } else {
            t += 1; // cache-hit access cycle, charged as busy by the caller
        }
        AccessOutcome {
            done: t,
            tlb_cycles,
            stall_cycles: stall,
            cache_hit,
            tlb_hit,
        }
    }

    /// Simulates a shared-data **write** issued at `now`: TLB check, cache
    /// update (write-through, no-write-allocate), write-buffer entry which
    /// drains through DRAM. Returns the stall if the buffer is full.
    pub fn write(&mut self, now: Cycles, addr: u64, params: &SysParams) -> AccessOutcome {
        let mut t = now;
        let (tlb_hit, tlb_cycles) = self.translate(addr, params);
        t += tlb_cycles;
        let cache_hit = self.cache.write(addr);
        t += 1; // the store itself
                // Write-through: a one-word memory transaction via the write buffer.
        let drain = params.mem_access(1);
        let stall = self.wb.push(t, &mut self.dram.resource, drain);
        t += stall;
        AccessOutcome {
            done: t,
            tlb_cycles,
            stall_cycles: stall,
            cache_hit,
            tlb_hit,
        }
    }

    fn translate(&mut self, addr: u64, params: &SysParams) -> (bool, Cycles) {
        let page = addr / params.page_bytes;
        if self.tlb.access(page) {
            (true, 0)
        } else {
            (false, params.tlb_fill)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SysParams {
        SysParams::default()
    }

    #[test]
    fn second_read_hits_cache_and_tlb() {
        let p = params();
        let mut n = NodeMemory::new(&p);
        let first = n.read(0, 64, &p);
        assert!(!first.cache_hit && !first.tlb_hit);
        let second = n.read(first.done, 64, &p);
        assert!(second.cache_hit && second.tlb_hit);
        assert_eq!(second.done, first.done + 1);
        assert_eq!(second.stall_cycles, 0);
    }

    #[test]
    fn read_miss_costs_line_fill() {
        let p = params();
        let mut n = NodeMemory::new(&p);
        n.tlb.access(0); // pre-warm translation for page 0
        let r = n.read(1000, 0, &p);
        assert!(!r.cache_hit);
        // line fill = mem_access(8) = 34 cycles on an idle DRAM
        assert_eq!(r.done, 1000 + 34);
    }

    #[test]
    fn writes_stall_only_when_buffer_full() {
        let p = params();
        let mut n = NodeMemory::new(&p);
        n.tlb.access(0);
        let mut t = 0;
        let mut stalled = 0u64;
        for i in 0..8 {
            let w = n.write(t, i * 4, &p);
            stalled += w.stall_cycles;
            t = w.done;
        }
        // 4 entries absorb the first writes; later ones stall behind DRAM.
        assert!(stalled > 0, "expected eventual write-buffer stalls");
        let w = n.write(t + 10_000, 0, &p);
        assert_eq!(w.stall_cycles, 0, "drained buffer should not stall");
    }

    #[test]
    fn reads_contend_with_write_drain() {
        let p = params();
        let mut n = NodeMemory::new(&p);
        n.tlb.access(0);
        // Saturate DRAM with write drains.
        let mut t = 0;
        for i in 0..4 {
            t = n.write(t, i * 4, &p).done;
        }
        let r = n.read(t, 512, &p);
        // The line fill must queue behind pending drains.
        assert!(r.stall_cycles >= p.mem_access(p.line_words()) - p.mem_setup);
    }
}
