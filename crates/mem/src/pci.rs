//! PCI bus: the path between main memory, the protocol controller and the
//! network interface (Fig 3 of the paper).

use ncp2_sim::{Cycles, FifoResource, SysParams};

/// The node's PCI bus, a contended single server with setup + burst timing.
///
/// Every inter-node transfer crosses the PCI bus twice (source and
/// destination nodes), and controller/NI accesses to main memory cross it
/// once, so a saturated PCI bus throttles both the DSM protocol and AURC's
/// automatic updates.
///
/// ```
/// use ncp2_sim::SysParams;
/// use ncp2_mem::PciBus;
/// let p = SysParams::default();
/// let mut bus = PciBus::new();
/// let (start, end) = bus.burst(100, 8, &p);
/// assert_eq!((start, end), (100, 134));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PciBus {
    /// Underlying FIFO reservation state.
    pub resource: FifoResource,
}

impl PciBus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a `words`-word burst starting no earlier than `now`;
    /// returns the granted `(start, end)` slot.
    pub fn burst(&mut self, now: Cycles, words: u64, params: &SysParams) -> (Cycles, Cycles) {
        self.resource.reserve(now, params.pci_access(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_serialize() {
        let p = SysParams::default();
        let mut bus = PciBus::new();
        let (_, e1) = bus.burst(0, 1024, &p);
        let (s2, _) = bus.burst(5, 8, &p);
        assert_eq!(s2, e1);
        assert!(bus.resource.busy_cycles() > 0);
    }
}
