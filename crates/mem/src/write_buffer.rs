//! Finite write buffer between the processor and the memory bus.

use std::collections::VecDeque;

use ncp2_sim::{Cycles, FifoResource};

/// A `capacity`-entry write buffer.
///
/// Each buffered store drains through the node's DRAM resource in FIFO
/// order. A store issued while the buffer is full stalls the processor until
/// the oldest entry retires — the paper's "write buffer stall time"
/// component of the *others* category.
///
/// ```
/// use ncp2_sim::FifoResource;
/// use ncp2_mem::WriteBuffer;
///
/// let mut dram = FifoResource::new();
/// let mut wb = WriteBuffer::new(1);
/// assert_eq!(wb.push(0, &mut dram, 13), 0); // buffered, no stall
/// let stall = wb.push(1, &mut dram, 13);    // full: waits for first drain
/// assert_eq!(stall, 12);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    /// Drain-completion times of in-flight entries, oldest first.
    drains: VecDeque<Cycles>,
    capacity: usize,
    stall_cycles: Cycles,
    writes: u64,
}

impl WriteBuffer {
    /// Creates an empty buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            drains: VecDeque::new(),
            capacity,
            stall_cycles: 0,
            writes: 0,
        }
    }

    /// Enqueues a store at time `now` whose memory transaction occupies
    /// `drain_duration` cycles of `dram`. Returns the processor stall
    /// (zero unless the buffer was full).
    pub fn push(&mut self, now: Cycles, dram: &mut FifoResource, drain_duration: Cycles) -> Cycles {
        self.writes += 1;
        self.retire(now);
        let mut stall = 0;
        if self.drains.len() == self.capacity {
            // Wait for the oldest entry to finish draining.
            let free_at = self.drains.pop_front().expect("buffer was full");
            // overflow: the oldest drain may already have finished; a
            // completed drain stalls for zero cycles.
            stall = free_at.saturating_sub(now);
            self.stall_cycles += stall;
        }
        let (_, end) = dram.reserve(now + stall, drain_duration);
        self.drains.push_back(end);
        stall
    }

    /// Retires entries whose drain completed by `now`.
    pub fn retire(&mut self, now: Cycles) {
        while self.drains.front().is_some_and(|&d| d <= now) {
            self.drains.pop_front();
        }
    }

    /// Time by which every buffered store will have reached memory; used at
    /// release points where the DSM must wait for its writes to be visible.
    pub fn drain_time(&self) -> Option<Cycles> {
        self.drains.back().copied()
    }

    /// Entries currently in flight.
    pub fn len(&self) -> usize {
        self.drains.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.drains.is_empty()
    }

    /// Total processor stall cycles charged so far.
    pub fn total_stall(&self) -> Cycles {
        self.stall_cycles
    }

    /// Total stores pushed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stall_until_full() {
        let mut dram = FifoResource::new();
        let mut wb = WriteBuffer::new(4);
        for i in 0..4 {
            assert_eq!(wb.push(i, &mut dram, 13), 0);
        }
        assert!(wb.push(4, &mut dram, 13) > 0);
    }

    #[test]
    fn retirement_frees_entries() {
        let mut dram = FifoResource::new();
        let mut wb = WriteBuffer::new(2);
        wb.push(0, &mut dram, 10);
        wb.push(0, &mut dram, 10);
        assert_eq!(wb.len(), 2);
        wb.retire(25);
        assert_eq!(wb.len(), 0);
        assert_eq!(wb.push(25, &mut dram, 10), 0);
    }

    #[test]
    fn drain_time_tracks_last_entry() {
        let mut dram = FifoResource::new();
        let mut wb = WriteBuffer::new(4);
        assert_eq!(wb.drain_time(), None);
        wb.push(0, &mut dram, 10);
        wb.push(0, &mut dram, 10);
        assert_eq!(wb.drain_time(), Some(20));
    }

    #[test]
    fn stall_accounting() {
        let mut dram = FifoResource::new();
        let mut wb = WriteBuffer::new(1);
        wb.push(0, &mut dram, 100);
        let s = wb.push(0, &mut dram, 100);
        assert_eq!(s, 100);
        assert_eq!(wb.total_stall(), 100);
        assert_eq!(wb.writes(), 2);
    }
}
