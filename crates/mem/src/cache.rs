//! Direct-mapped first-level data cache (timing side).
//!
//! 128 KB total, 32-byte lines by default. Shared pages are kept
//! **write-through** (§3.1: "forcing the cache to write shared data through
//! to the bus") so the protocol controller can snoop stores and maintain
//! per-page dirty-word bit vectors; writes are no-write-allocate.

/// Direct-mapped cache tag array.
///
/// ```
/// use ncp2_mem::Cache;
/// let mut c = Cache::new(4096, 32);
/// assert!(!c.read(0x40));      // cold miss fills the line
/// assert!(c.read(0x44));       // same 32-byte line
/// assert!(!c.read(0x40 + 4096 * 32)); // conflicting tag evicts it
/// assert!(!c.read(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    tags: Vec<Option<u64>>,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache with `lines` direct-mapped entries of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or `line_bytes` is not a power of two.
    pub fn new(lines: u64, line_bytes: u64) -> Self {
        assert!(lines > 0, "cache needs at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            tags: vec![None; lines as usize],
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    fn slot(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        ((line % self.tags.len() as u64) as usize, line)
    }

    /// Read lookup; fills the line on a miss. Returns whether it hit.
    pub fn read(&mut self, addr: u64) -> bool {
        let (idx, tag) = self.slot(addr);
        if self.tags[idx] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.tags[idx] = Some(tag);
            false
        }
    }

    /// Write lookup; write-through, **no** allocate on miss. Returns whether
    /// it hit (and updated) a resident line.
    pub fn write(&mut self, addr: u64) -> bool {
        let (idx, tag) = self.slot(addr);
        if self.tags[idx] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Invalidates every resident line of the page starting at `page_base`
    /// (used when the protocol controller or network interface writes data
    /// directly to local memory — the processor snoop of §3.1).
    pub fn invalidate_page(&mut self, page_base: u64, page_bytes: u64) {
        let first_line = page_base / self.line_bytes;
        let lines_per_page = page_bytes / self.line_bytes;
        for line in first_line..first_line + lines_per_page {
            let idx = (line % self.tags.len() as u64) as usize;
            if self.tags[idx] == Some(line) {
                self.tags[idx] = None;
            }
        }
    }

    /// Invalidates the single line containing `addr` if resident.
    pub fn invalidate_line(&mut self, addr: u64) {
        let (idx, tag) = self.slot(addr);
        if self.tags[idx] == Some(tag) {
            self.tags[idx] = None;
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_within_line() {
        let mut c = Cache::new(64, 32);
        assert!(!c.read(100));
        for off in 96..128 {
            assert!(c.read(off), "address {off} shares the line");
        }
        assert!(!c.read(128));
    }

    #[test]
    fn write_does_not_allocate() {
        let mut c = Cache::new(64, 32);
        assert!(!c.write(0));
        assert!(!c.read(0), "write miss must not have filled the line");
        assert!(c.write(0), "read fill makes later writes hit");
    }

    #[test]
    fn conflict_misses() {
        let mut c = Cache::new(8, 32);
        let stride = 8 * 32;
        assert!(!c.read(0));
        assert!(!c.read(stride)); // maps to the same set, evicts
        assert!(!c.read(0));
    }

    #[test]
    fn page_invalidation_clears_resident_lines() {
        let mut c = Cache::new(4096, 32);
        for addr in (4096..8192).step_by(32) {
            c.read(addr);
        }
        c.invalidate_page(4096, 4096);
        assert!(!c.read(4096));
        assert!(!c.read(8160));
    }

    #[test]
    fn line_invalidation_is_precise() {
        let mut c = Cache::new(4096, 32);
        c.read(0);
        c.read(32);
        c.invalidate_line(0);
        assert!(!c.read(0));
        assert!(c.read(32));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(16, 32);
        c.read(0);
        c.read(0);
        c.write(0);
        assert_eq!(c.stats(), (2, 1));
    }
}
