//! 128-entry TLB with FIFO replacement.

use std::collections::VecDeque;

/// Translation lookaside buffer, fully associative with FIFO replacement.
///
/// The paper charges a 100-cycle fill on a miss (Table 1); the cost lives in
/// `SysParams`, this type only tracks residency.
///
/// ```
/// use ncp2_mem::Tlb;
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(1)); // cold miss, now resident
/// assert!(tlb.access(1));
/// tlb.access(2);
/// tlb.access(3); // evicts page 1 (FIFO)
/// assert!(!tlb.access(1));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB holding `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `page`; on a miss, fills the entry (evicting FIFO-oldest).
    /// Returns whether the lookup hit.
    pub fn access(&mut self, page: u64) -> bool {
        if self.entries.contains(&page) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back(page);
            false
        }
    }

    /// Drops a translation (page remap / invalidation).
    pub fn invalidate(&mut self, page: u64) {
        self.entries.retain(|&p| p != page);
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_order() {
        let mut tlb = Tlb::new(3);
        for p in 0..3 {
            assert!(!tlb.access(p));
        }
        assert!(!tlb.access(3)); // evicts 0
        assert!(!tlb.access(0)); // 0 gone, evicts 1
        assert!(tlb.access(2));
        assert!(tlb.access(3));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.access(7);
        assert!(tlb.access(7));
        tlb.invalidate(7);
        assert!(!tlb.access(7));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut tlb = Tlb::new(2);
        tlb.access(1);
        tlb.access(1);
        tlb.access(2);
        assert_eq!(tlb.stats(), (1, 2));
    }

    #[test]
    fn capacity_respected() {
        let mut tlb = Tlb::new(5);
        for p in 0..100 {
            tlb.access(p);
            assert!(tlb.len() <= 5);
        }
        assert!(!tlb.is_empty());
    }
}
