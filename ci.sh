#!/usr/bin/env sh
# CI gate: static checks first (fast fail), then build, then the full test
# suite, then the observability smoke + bench-regression trajectory.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo xtask lint --scan-only --json > target/lint_report.json
cargo build --release
cargo test -q

# Observability smoke: one observed run must pass its own conservation /
# determinism self-check and produce parseable exports.
OBS_OUT="${OBS_OUT:-target/obs-smoke}"
cargo run --release --bin obs_report -- \
    --app TSP --mode I+P+D --nprocs 4 --out-dir "$OBS_OUT" --selfcheck

# Critical-path smoke: the dependency graph must build, the conservation
# law (critical-path length == total cycles) must hold, and the what-if
# prediction must land inside the documented accuracy bound.
cargo run --release --bin critpath_report -- \
    --app TSP --no-cache --quiet --check --out "$OBS_OUT/critpath.json"

# Timeline smoke: the windowed time-series recorder plus the assertion
# engine. A congestion fault window must fire the retransmit-storm
# assertion inside the injected cycle range, the fault-free twin must fire
# nothing, and the archived JSON must be byte-identical across reruns.
cargo run --release --bin timeline_report -- \
    --check --no-cache --quiet --out-dir "$OBS_OUT"

# Service gate: the open-loop tail-latency matrix — every protocol mode at
# three offered loads, oracle-verified, checksum-invariant across modes and
# loads, p99(I+P+D) < p99(Base) at the highest pre-saturation load, the 1%
# frame-drop twin checksum-equal with bounded tail inflation, and the
# archived svc_report.json byte-identical across --jobs 1 and --jobs 8.
cargo run --release --bin svc_report -- --check --quiet --out-dir "$OBS_OUT"

# Chaos gate: every tier-1 workload under every protocol mode, faulted
# (drop + duplicate + corrupt + ack loss + a reordering latency spike) and
# fault-free. Checksums must match their fault-free twins, the verification
# oracle must stay silent, total cycles must stay within the bounded
# degradation budget, and the window-assertion engine must see the faults
# (>= 1 firing across the faulted runs, zero on any fault-free twin).
# Cache disabled: the gate must exercise the transport as built.
cargo run --release --bin chaos_report -- --check --no-cache --quiet

# Scale smoke: one 256-node sweep step (Ocean under Base) with the verify
# oracle on. The full 2..=256 doubling sweep is `fig01b_doubling --scale`;
# here one cached step proves the calendar queue, flat tables and indexed
# routing hold up at the full cluster size on every CI run.
cargo run --release --bin fig01b_doubling -- --scale --app Ocean --quiet

# Bench trajectory: regenerate the tier-1 suite through the parallel
# experiment engine — cache disabled so the numbers reflect the code as
# built, never a stale cached result — and gate on regressions against the
# committed baseline (seeded on first run; refreshed in place after a pass
# so the baseline tracks the trajectory).
cargo run --release --bin obs_report -- --bench "$OBS_OUT/bench_new.json" --no-cache --quiet
cargo xtask bench-diff BENCH_tier1.json "$OBS_OUT/bench_new.json" --update

# Host-side profiling demo: one observed run with `--prof` (counting
# allocator in) must still pass the determinism self-check — host-phase
# attribution is wall-clock data and provably inert to everything simulated.
cargo run --release --features prof --bin obs_report -- \
    --app TSP --mode I+P+D --nprocs 4 --selfcheck --prof --quiet

# Wall-clock trajectory: the microbench suite over the host hot paths, in
# the fast smoke configuration, gated against the committed baseline —
# median time may not double, exact allocation counts may not grow past
# 10%. Archived next to the other artifacts; refreshed in place after a
# pass so the baseline tracks the host the gate runs on.
cargo run --release --features prof --bin wall_bench -- \
    --fast --save-baseline "$OBS_OUT/wall_report.json"
cargo xtask wall-diff BENCH_WALL.json "$OBS_OUT/wall_report.json" --update
