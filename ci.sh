#!/usr/bin/env sh
# CI gate: static checks first (fast fail), then build, then the full suite.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo xtask lint --scan-only
cargo build --release
cargo test -q
