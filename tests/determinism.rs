//! Bit-for-bit determinism of full application runs: the whole point of the
//! deterministic scheduler is that two identical configurations produce
//! identical simulated machines — cycle counts, breakdowns, traffic.

use ncp2::prelude::*;

fn run_once(proto: Protocol) -> RunResult {
    run_app(
        SysParams::default().with_nprocs(8),
        proto,
        Water {
            molecules: 24,
            steps: 2,
            seed: 0xDE7,
        },
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::TreadMarks(OverlapMode::IPD),
        Protocol::Aurc { prefetch: true },
    ] {
        let a = run_once(proto);
        let b = run_once(proto);
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "{proto}: cycle counts differ"
        );
        assert_eq!(a.checksum, b.checksum, "{proto}: checksums differ");
        assert_eq!(
            a.net.messages, b.net.messages,
            "{proto}: message counts differ"
        );
        assert_eq!(a.net.bytes, b.net.bytes, "{proto}: traffic differs");
        for (pid, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            assert_eq!(x, y, "{proto}: node {pid} stats differ");
        }
    }
}

#[test]
fn different_seeds_change_timing_but_not_validity() {
    let a = run_app(
        SysParams::default().with_nprocs(4),
        Protocol::TreadMarks(OverlapMode::Base),
        Em3d {
            nodes: 384,
            degree: 3,
            remote_pct: 10,
            iters: 2,
            seed: 1,
        },
    );
    let b = run_app(
        SysParams::default().with_nprocs(4),
        Protocol::TreadMarks(OverlapMode::Base),
        Em3d {
            nodes: 384,
            degree: 3,
            remote_pct: 10,
            iters: 2,
            seed: 2,
        },
    );
    assert_ne!(a.checksum, b.checksum, "different graphs must differ");
    assert!(a.total_cycles > 0 && b.total_cycles > 0);
}

#[test]
fn parameter_changes_do_not_change_results() {
    // Timing parameters must be timing-only: any data effect is a bug.
    let app = || Radix {
        keys: 512,
        radix: 64,
        passes: 2,
        seed: 5,
    };
    let base = run_app(
        SysParams::default(),
        Protocol::TreadMarks(OverlapMode::ID),
        app(),
    );
    for params in [
        SysParams::default().with_net_bandwidth_mbps(20.0),
        SysParams::default().with_mem_latency_ns(200),
        SysParams::default().with_messaging_overhead_us(4.0),
        SysParams::default().with_mem_bandwidth_mbps(60.0),
    ] {
        let r = run_app(params, Protocol::TreadMarks(OverlapMode::ID), app());
        assert_eq!(r.checksum, base.checksum);
    }
}
