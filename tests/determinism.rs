//! Bit-for-bit determinism of full application runs: the whole point of the
//! deterministic scheduler is that two identical configurations produce
//! identical simulated machines — cycle counts, breakdowns, traffic.

use ncp2::prelude::*;

/// Runs `app` twice under each protocol and asserts the two runs agree on
/// every statistic we publish — total cycles, checksum, network traffic and
/// the full per-node breakdowns.
fn assert_bit_identical<W: Workload + Clone>(app: W, nprocs: usize) {
    for proto in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::TreadMarks(OverlapMode::IPD),
        Protocol::Aurc { prefetch: true },
    ] {
        let name = app.name();
        let run = || run_app(SysParams::default().with_nprocs(nprocs), proto, app.clone());
        let a = run();
        let b = run();
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "{name} under {proto}: cycle counts differ"
        );
        assert_eq!(
            a.checksum, b.checksum,
            "{name} under {proto}: checksums differ"
        );
        assert_eq!(
            a.net.messages, b.net.messages,
            "{name} under {proto}: message counts differ"
        );
        assert_eq!(
            a.net.bytes, b.net.bytes,
            "{name} under {proto}: traffic differs"
        );
        for (pid, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            assert_eq!(x, y, "{name} under {proto}: node {pid} stats differ");
        }
    }
}

#[test]
fn identical_water_runs_are_bit_identical() {
    assert_bit_identical(
        Water {
            molecules: 24,
            steps: 2,
            seed: 0xDE7,
        },
        8,
    );
}

#[test]
fn identical_tsp_runs_are_bit_identical() {
    assert_bit_identical(
        Tsp {
            cities: 8,
            prefix_depth: 2,
            seed: 0x757,
        },
        8,
    );
}

#[test]
fn different_seeds_change_timing_but_not_validity() {
    let a = run_app(
        SysParams::default().with_nprocs(4),
        Protocol::TreadMarks(OverlapMode::Base),
        Em3d {
            nodes: 384,
            degree: 3,
            remote_pct: 10,
            iters: 2,
            seed: 1,
        },
    );
    let b = run_app(
        SysParams::default().with_nprocs(4),
        Protocol::TreadMarks(OverlapMode::Base),
        Em3d {
            nodes: 384,
            degree: 3,
            remote_pct: 10,
            iters: 2,
            seed: 2,
        },
    );
    assert_ne!(a.checksum, b.checksum, "different graphs must differ");
    assert!(a.total_cycles > 0 && b.total_cycles > 0);
}

/// The engine's tier-1 grid — every tier-1 workload under all eight
/// protocols — run serially (`--jobs 1`) and with eight workers
/// (`--jobs 8`): results must be **byte-identical**, proving the work-queue
/// scheduler cannot perturb the simulations it hosts. Caching is off so
/// both passes genuinely simulate.
#[test]
fn parallel_engine_equals_serial_engine_byte_for_byte() {
    use ncp2_bench::engine::{tier1_grid, Engine};
    use ncp2_bench::harness::ALL_MODE_LABELS;

    let grid = tier1_grid(&ALL_MODE_LABELS);
    let serial = Engine::new().no_cache().silent().with_jobs(1).run(&grid);
    let parallel = Engine::new().no_cache().silent().with_jobs(8).run(&grid);
    assert_eq!(serial.len(), grid.jobs.len());
    assert_eq!(serial.len(), parallel.len());
    for ((job, a), b) in grid.jobs.iter().zip(&serial).zip(&parallel) {
        let label = &job.label;
        assert_eq!(
            a.result.total_cycles, b.result.total_cycles,
            "{label}: cycle counts differ between --jobs 1 and --jobs 8"
        );
        assert_eq!(
            a.result.checksum, b.result.checksum,
            "{label}: checksums differ between --jobs 1 and --jobs 8"
        );
        assert_eq!(
            a.result.nodes, b.result.nodes,
            "{label}: node stats differ between --jobs 1 and --jobs 8"
        );
        assert_eq!(
            a.result.net, b.result.net,
            "{label}: traffic differs between --jobs 1 and --jobs 8"
        );
        let (ra, rb) = (
            a.report.as_ref().expect("tier-1 jobs are observed"),
            b.report.as_ref().expect("tier-1 jobs are observed"),
        );
        assert_eq!(
            ra.to_json(),
            rb.to_json(),
            "{label}: metrics JSON differs between --jobs 1 and --jobs 8"
        );
    }
}

/// Same, under chaos: every tier-1 job carries a nonzero fault plan (drop +
/// duplicate + ack loss + a reordering latency spike), so retransmission
/// timers, duplicate suppression and resequencing all run — in simulated
/// time. `--jobs 1` and `--jobs 8` must still agree byte-for-byte, down to
/// the fault counters themselves.
#[test]
fn faulted_parallel_engine_equals_serial_engine_byte_for_byte() {
    use ncp2_bench::engine::{tier1_grid, Engine};
    use ncp2_fault::{FaultPlan, LinkWindow};

    let mut grid = tier1_grid(&["Base", "I+P+D", "AURC+P"]);
    for job in &mut grid.jobs {
        job.fault = FaultPlan {
            seed: 0xD15EA5E,
            drop_permille: 15,
            dup_permille: 10,
            ack_faults: true,
            spikes: vec![LinkWindow {
                src: 0,
                dst: 1,
                start: 0,
                end: 500_000,
                extra: 3_000,
            }],
            ..FaultPlan::none()
        };
    }
    let serial = Engine::new().no_cache().silent().with_jobs(1).run(&grid);
    let parallel = Engine::new().no_cache().silent().with_jobs(8).run(&grid);
    assert_eq!(serial.len(), grid.jobs.len());
    let mut retransmits = 0;
    for ((job, a), b) in grid.jobs.iter().zip(&serial).zip(&parallel) {
        let label = &job.label;
        assert_eq!(
            a.result.total_cycles, b.result.total_cycles,
            "{label}: faulted cycle counts differ between --jobs 1 and --jobs 8"
        );
        assert_eq!(a.result.checksum, b.result.checksum, "{label}: checksums");
        assert_eq!(a.result.nodes, b.result.nodes, "{label}: node stats");
        assert_eq!(a.result.net, b.result.net, "{label}: traffic");
        assert_eq!(
            a.result.fault, b.result.fault,
            "{label}: fault counters differ between --jobs 1 and --jobs 8"
        );
        retransmits += a.result.fault.retransmits;
    }
    assert!(retransmits > 0, "the chaos plan never forced a retransmit");
}

#[test]
fn parameter_changes_do_not_change_results() {
    // Timing parameters must be timing-only: any data effect is a bug.
    let app = || Radix {
        keys: 512,
        radix: 64,
        passes: 2,
        seed: 5,
    };
    let base = run_app(
        SysParams::default(),
        Protocol::TreadMarks(OverlapMode::ID),
        app(),
    );
    for params in [
        SysParams::default().with_net_bandwidth_mbps(20.0),
        SysParams::default().with_mem_latency_ns(200),
        SysParams::default().with_messaging_overhead_us(4.0),
        SysParams::default().with_mem_bandwidth_mbps(60.0),
    ] {
        let r = run_app(params, Protocol::TreadMarks(OverlapMode::ID), app());
        assert_eq!(r.checksum, base.checksum);
    }
}
