//! Cross-crate integration: the facade exposes a working pipeline from
//! parameters through protocols, applications and reporting.

use ncp2::prelude::*;

#[test]
fn facade_runs_an_app_end_to_end() {
    let params = SysParams::default().with_nprocs(8);
    let r = run_app(
        params,
        Protocol::TreadMarks(OverlapMode::ID),
        Radix {
            keys: 1024,
            radix: 64,
            passes: 2,
            seed: 1,
        },
    );
    assert_eq!(r.protocol, "I+D");
    assert_eq!(r.nprocs, 8);
    assert!(r.total_cycles > 0);
    assert!(r.net.messages > 0, "a DSM run must exchange messages");
    let table = breakdown_table(&[(
        r.protocol.as_str(),
        r.total_cycles,
        r.aggregate(),
        r.diff_pct(),
    )]);
    assert!(table.contains("I+D"));
}

#[test]
fn sweep_helpers_change_measured_behavior() {
    let app = || Em3d {
        nodes: 512,
        degree: 3,
        remote_pct: 10,
        iters: 2,
        seed: 7,
    };
    let fast = run_app(
        SysParams::default().with_net_bandwidth_mbps(200.0),
        Protocol::TreadMarks(OverlapMode::Base),
        app(),
    );
    let slow = run_app(
        SysParams::default().with_net_bandwidth_mbps(20.0),
        Protocol::TreadMarks(OverlapMode::Base),
        app(),
    );
    assert!(
        slow.total_cycles > fast.total_cycles,
        "a 10x slower network must lengthen the run ({} vs {})",
        slow.total_cycles,
        fast.total_cycles
    );
    assert_eq!(
        slow.checksum, fast.checksum,
        "timing must never change results"
    );
}

#[test]
fn processor_count_scales_runtime_down() {
    // A compute-heavy workload must show real speedup despite DSM overhead.
    let app = || Water {
        molecules: 48,
        steps: 2,
        seed: 0x5ca1e,
    };
    let seq = sequential_baseline(&SysParams::default(), app());
    let p8 = run_app(
        SysParams::default().with_nprocs(8),
        Protocol::TreadMarks(OverlapMode::ID),
        app(),
    );
    assert_eq!(p8.checksum, seq.checksum);
    assert!(
        p8.total_cycles < seq.total_cycles,
        "8 processors should beat sequential ({} vs {})",
        p8.total_cycles,
        seq.total_cycles
    );
}

#[test]
fn stats_pipeline_renders_every_report() {
    let xs = [1.0, 2.0];
    let plot = xy_plot("t", "x", &xs, &[("s", vec![1.0, 2.0])]);
    assert!(plot.contains("2.000"));
    let bars = normalized_bars(&[("a", 10), ("b", 20)]);
    assert!(bars.contains("200.0%"));
    let speed = speedup_table(&["A"], &[2], &[vec![1.5]]);
    assert!(speed.contains("1.50"));
}
