//! Whole-stack coherence validation: application checksums on the 16-node
//! DSM must be bit-identical to sequential execution under every protocol
//! the paper evaluates. (Smaller inputs than `crates/apps` tests; this is
//! the cross-crate smoke screen.)

use ncp2::prelude::*;

const PROTOCOLS: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

fn assert_coherent<W: Workload + Clone>(app: W) {
    let params = SysParams::default();
    let expected = sequential_baseline(&params, app.clone()).checksum;
    assert_ne!(expected, 0, "{} produced a zero checksum", app.name());
    for proto in PROTOCOLS {
        let got = run_app(params.clone(), proto, app.clone()).checksum;
        assert_eq!(got, expected, "{} diverged under {}", app.name(), proto);
    }
}

#[test]
fn radix_is_coherent_under_all_protocols() {
    assert_coherent(Radix {
        keys: 1024,
        radix: 64,
        passes: 2,
        seed: 0xD1,
    });
}

#[test]
fn em3d_is_coherent_under_all_protocols() {
    assert_coherent(Em3d {
        nodes: 384,
        degree: 3,
        remote_pct: 15,
        iters: 2,
        seed: 0xD2,
    });
}

#[test]
fn water_is_coherent_under_all_protocols() {
    assert_coherent(Water {
        molecules: 24,
        steps: 2,
        seed: 0xD3,
    });
}

#[test]
fn ocean_is_coherent_under_all_protocols() {
    assert_coherent(Ocean { grid: 26, iters: 3 });
}

#[test]
fn barnes_is_coherent_under_all_protocols() {
    assert_coherent(Barnes {
        bodies: 48,
        steps: 2,
        theta_16: 12,
        seed: 0xD4,
    });
}

#[test]
fn tsp_is_coherent_and_optimal() {
    let app = Tsp {
        cities: 7,
        prefix_depth: 2,
        seed: 0xD5,
    };
    let optimal = app.solve_reference() as u64;
    let params = SysParams::default();
    for proto in PROTOCOLS {
        let got = run_app(params.clone(), proto, app.clone()).checksum;
        assert_eq!(got, optimal, "TSP under {proto} missed the optimal tour");
    }
}
