//! Qualitative reproduction guards: the paper's headline behaviors must
//! hold on the default workloads. These are the "shape" assertions of
//! EXPERIMENTS.md in executable form (kept loose enough to survive
//! calibration changes, tight enough to catch regressions).

#![allow(clippy::type_complexity)]

use ncp2::prelude::*;

fn run(proto: Protocol, app: impl Workload) -> RunResult {
    run_app(SysParams::default(), proto, app)
}

/// §5.1: hardware-supported diffs are the biggest win — I+D beats Base for
/// every application, and eliminates both twins and processor-side diff
/// work entirely.
#[test]
fn hardware_diffs_always_beat_base() {
    let apps: Vec<(&str, Box<dyn Workload>, Box<dyn Workload>)> = vec![
        (
            "Radix",
            Box::new(Radix {
                keys: 4096,
                radix: 128,
                passes: 3,
                seed: 2,
            }),
            Box::new(Radix {
                keys: 4096,
                radix: 128,
                passes: 3,
                seed: 2,
            }),
        ),
        (
            "Em3d",
            Box::new(Em3d {
                nodes: 2048,
                degree: 3,
                remote_pct: 10,
                iters: 4,
                seed: 3,
            }),
            Box::new(Em3d {
                nodes: 2048,
                degree: 3,
                remote_pct: 10,
                iters: 4,
                seed: 3,
            }),
        ),
        (
            "Ocean",
            Box::new(Ocean { grid: 66, iters: 6 }),
            Box::new(Ocean { grid: 66, iters: 6 }),
        ),
    ];
    for (name, a, b) in apps {
        let base = run(Protocol::TreadMarks(OverlapMode::Base), a);
        let id = run(Protocol::TreadMarks(OverlapMode::ID), b);
        assert!(
            id.total_cycles < base.total_cycles,
            "{name}: I+D ({}) should beat Base ({})",
            id.total_cycles,
            base.total_cycles
        );
        let base_twins: u64 = base.nodes.iter().map(|n| n.twin_cycles).sum();
        let id_twins: u64 = id.nodes.iter().map(|n| n.twin_cycles).sum();
        assert!(
            base_twins > 0 && id_twins == 0,
            "{name}: twins must vanish under I+D"
        );
        assert_eq!(
            id.diff_pct(),
            0.0,
            "{name}: no processor-side diff work under I+D"
        );
        assert!(
            id.diff_total_cycles() < base.diff_total_cycles(),
            "{name}: the DMA engine must cut total diff-operation time"
        );
    }
}

/// §5.1: prefetching alone hurts lock-intensive applications (Radix's
/// clustered traffic, Water/Barnes's short critical sections).
#[test]
fn prefetching_alone_hurts_radix() {
    let app = || Radix {
        keys: 4096,
        radix: 128,
        passes: 3,
        seed: 2,
    };
    let base = run(Protocol::TreadMarks(OverlapMode::Base), app());
    let p = run(Protocol::TreadMarks(OverlapMode::P), app());
    assert!(
        p.total_cycles > base.total_cycles,
        "P ({}) should hurt Radix vs Base ({})",
        p.total_cycles,
        base.total_cycles
    );
    let (issued, _) = p.prefetch_totals();
    assert!(issued > 0, "P mode must actually prefetch");
}

/// §5.1: combining prefetching with controller offload recovers most of the
/// losses (I+P <= P for every app we spot-check).
#[test]
fn offload_recovers_prefetch_losses() {
    for app in [0, 1] {
        let make = |i: usize| -> Box<dyn Workload> {
            match i {
                0 => Box::new(Radix {
                    keys: 4096,
                    radix: 128,
                    passes: 3,
                    seed: 2,
                }),
                _ => Box::new(Water {
                    molecules: 48,
                    steps: 2,
                    seed: 9,
                }),
            }
        };
        let p = run(Protocol::TreadMarks(OverlapMode::P), make(app));
        let ip = run(Protocol::TreadMarks(OverlapMode::IP), make(app));
        assert!(
            ip.total_cycles <= p.total_cycles,
            "app {app}: I+P ({}) should not lose to P ({})",
            ip.total_cycles,
            p.total_cycles
        );
    }
}

/// §5.2: the overlapping TreadMarks outperforms AURC for the lock-based
/// applications (Radix/Barnes in our reproduction), and AURC's automatic
/// updates generate the traffic the paper blames for it.
#[test]
fn overlapping_treadmarks_beats_aurc_on_lock_apps() {
    let tm = run(
        Protocol::TreadMarks(OverlapMode::ID),
        Barnes {
            bodies: 128,
            steps: 2,
            theta_16: 12,
            seed: 4,
        },
    );
    let aurc = run(
        Protocol::Aurc { prefetch: false },
        Barnes {
            bodies: 128,
            steps: 2,
            theta_16: 12,
            seed: 4,
        },
    );
    assert!(
        tm.total_cycles < aurc.total_cycles,
        "I+D ({}) should beat AURC ({}) on Barnes",
        tm.total_cycles,
        aurc.total_cycles
    );
    let updates: u64 = aurc.nodes.iter().map(|n| n.au_updates).sum();
    assert!(updates > 0, "AURC must emit automatic updates");
    assert_eq!(tm.nodes.iter().map(|n| n.au_updates).sum::<u64>(), 0);
}

/// §5.3: AURC needs network bandwidth much more than it needs low memory
/// latency; a starved network hurts both protocols.
#[test]
fn low_network_bandwidth_hurts_both_protocols() {
    let app = || Em3d {
        nodes: 1024,
        degree: 3,
        remote_pct: 10,
        iters: 3,
        seed: 6,
    };
    for proto in [
        Protocol::TreadMarks(OverlapMode::ID),
        Protocol::Aurc { prefetch: false },
    ] {
        let fast = run_app(
            SysParams::default().with_net_bandwidth_mbps(200.0),
            proto,
            app(),
        );
        let slow = run_app(
            SysParams::default().with_net_bandwidth_mbps(20.0),
            proto,
            app(),
        );
        assert!(
            slow.total_cycles as f64 > 1.2 * fast.total_cycles as f64,
            "{proto}: 10x less bandwidth should cost >20% ({} vs {})",
            slow.total_cycles,
            fast.total_cycles
        );
    }
}
