//! Sweep one architectural parameter (§5.3 of the paper) and plot the
//! normalized running time of TreadMarks(I+D) vs AURC.
//!
//! ```sh
//! cargo run --release --example parameter_sweep -- net_bw
//! cargo run --release --example parameter_sweep -- mem_lat
//! ```

#![allow(clippy::type_complexity)]

use ncp2::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "net_bw".into());
    let (title, x_label, xs, make): (&str, &str, Vec<f64>, fn(f64) -> SysParams) =
        match which.as_str() {
            "net_bw" => (
                "Effect of network bandwidth on Em3d",
                "MB/s",
                vec![20.0, 50.0, 100.0, 200.0],
                |x| SysParams::default().with_net_bandwidth_mbps(x),
            ),
            "mem_lat" => (
                "Effect of memory latency on Em3d",
                "ns",
                vec![40.0, 100.0, 150.0, 200.0],
                |x| SysParams::default().with_mem_latency_ns(x as u64),
            ),
            "msg_oh" => (
                "Effect of messaging overhead on Em3d",
                "us",
                vec![1.0, 2.0, 3.0, 4.0],
                |x| SysParams::default().with_messaging_overhead_us(x),
            ),
            other => {
                eprintln!("unknown sweep {other}; use net_bw|mem_lat|msg_oh");
                std::process::exit(2);
            }
        };
    let base = run_app(
        SysParams::default(),
        Protocol::TreadMarks(OverlapMode::ID),
        Em3d::default(),
    )
    .total_cycles as f64;
    let mut tm = Vec::new();
    let mut aurc = Vec::new();
    for &x in &xs {
        let r = run_app(
            make(x),
            Protocol::TreadMarks(OverlapMode::ID),
            Em3d::default(),
        );
        tm.push(r.total_cycles as f64 / base);
        let r = run_app(make(x), Protocol::Aurc { prefetch: false }, Em3d::default());
        aurc.push(r.total_cycles as f64 / base);
    }
    println!(
        "{}",
        xy_plot(title, x_label, &xs, &[("Em3d-TM", tm), ("Em3d-AURC", aurc)])
    );
}
