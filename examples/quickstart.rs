//! Quickstart: run one application on the simulated 16-node machine under
//! two protocols and print the paper-style breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ncp2::prelude::*;

fn main() {
    let params = SysParams::default(); // Table 1 of the paper
    println!(
        "Simulating {} nodes, {:.0} MB/s mesh, {} ns memory latency\n",
        params.nprocs,
        params.net_bandwidth_mbps(),
        params.mem_latency_ns()
    );

    // A sequential run gives the speedup baseline and the reference checksum.
    let seq = sequential_baseline(&params, Em3d::default());
    println!(
        "sequential Em3d: {} cycles, checksum {:#018x}",
        seq.total_cycles, seq.checksum
    );

    let mut rows = Vec::new();
    for protocol in [
        Protocol::TreadMarks(OverlapMode::Base),
        Protocol::TreadMarks(OverlapMode::ID),
    ] {
        let r = run_app(params.clone(), protocol, Em3d::default());
        assert_eq!(
            r.checksum, seq.checksum,
            "DSM run diverged from sequential!"
        );
        println!(
            "{:<6}: {:>9} cycles  (speedup {:.2} over sequential)",
            r.protocol,
            r.total_cycles,
            r.speedup_over(seq.total_cycles).unwrap_or(0.0)
        );
        rows.push((
            r.protocol.clone(),
            r.total_cycles,
            r.aggregate(),
            r.diff_pct(),
        ));
    }
    println!();
    let borrowed: Vec<(&str, u64, _, f64)> = rows
        .iter()
        .map(|(l, c, b, d)| (l.as_str(), *c, *b, *d))
        .collect();
    print!("{}", breakdown_table(&borrowed));
    println!("\nThe NCP2 protocol controller's hardware diffs (I+D) shorten the run");
    println!("while computing bit-identical application results.");
}
