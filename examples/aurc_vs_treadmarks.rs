//! The paper's §5.2 head-to-head: overlapping TreadMarks (I+D) against
//! AURC and AURC with prefetching, on every application.
//!
//! ```sh
//! cargo run --release --example aurc_vs_treadmarks
//! ```

#![allow(clippy::type_complexity)]

use ncp2::prelude::*;

fn main() {
    let params = SysParams::default();
    let apps: Vec<(&str, fn() -> Box<dyn Workload>)> = vec![
        ("TSP", || Box::new(Tsp::default())),
        ("Water", || Box::new(Water::default())),
        ("Radix", || Box::new(Radix::default())),
        ("Barnes", || Box::new(Barnes::default())),
        ("Em3d", || Box::new(Em3d::default())),
        ("Ocean", || Box::new(Ocean::default())),
    ];
    for (name, make) in apps {
        let mut bars = Vec::new();
        for protocol in [
            Protocol::TreadMarks(OverlapMode::ID),
            Protocol::Aurc { prefetch: false },
            Protocol::Aurc { prefetch: true },
        ] {
            let r = run_app(params.clone(), protocol, make());
            bars.push((r.protocol.clone(), r.total_cycles));
        }
        println!("{name}:");
        let borrowed: Vec<(&str, u64)> = bars.iter().map(|(l, c)| (l.as_str(), *c)).collect();
        print!("{}", normalized_bars(&borrowed));
        println!();
    }
}
