//! Walk one application through all six TreadMarks overlap modes (§5.1 of
//! the paper) and show where the cycles go.
//!
//! ```sh
//! cargo run --release --example overlap_modes [-- app-name]
//! ```

use ncp2::prelude::*;

fn pick_app(name: &str) -> Box<dyn Workload> {
    match name {
        "TSP" => Box::new(Tsp::default()),
        "Water" => Box::new(Water::default()),
        "Radix" => Box::new(Radix::default()),
        "Barnes" => Box::new(Barnes::default()),
        "Em3d" => Box::new(Em3d::default()),
        "Ocean" => Box::new(Ocean::default()),
        other => {
            eprintln!("unknown app {other}; use TSP|Water|Radix|Barnes|Em3d|Ocean");
            std::process::exit(2);
        }
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Ocean".into());
    let params = SysParams::default();
    let mut rows = Vec::new();
    println!("TreadMarks overlap modes on {name} (16 nodes):\n");
    for mode in [
        OverlapMode::Base,
        OverlapMode::I,
        OverlapMode::ID,
        OverlapMode::P,
        OverlapMode::IP,
        OverlapMode::IPD,
    ] {
        let r = run_app(params.clone(), Protocol::TreadMarks(mode), pick_app(&name));
        let (issued, useless) = r.prefetch_totals();
        if issued > 0 {
            println!(
                "{:<6}: {} prefetches issued, {} useless",
                mode.label(),
                issued,
                useless
            );
        }
        rows.push((
            r.protocol.clone(),
            r.total_cycles,
            r.aggregate(),
            r.diff_pct(),
        ));
    }
    println!();
    let borrowed: Vec<(&str, u64, _, f64)> = rows
        .iter()
        .map(|(l, c, b, d)| (l.as_str(), *c, *b, *d))
        .collect();
    print!("{}", breakdown_table(&borrowed));
}
